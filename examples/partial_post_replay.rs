//! Partial Post Replay end to end: a large upload survives an app-server
//! restart because the proxy replays it to a healthy replica.
//!
//! ```sh
//! cargo run --example partial_post_replay
//! ```

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig, RestartBehavior};
use zero_downtime_release::proto::http1::{serialize_request, Request, ResponseParser};
use zero_downtime_release::proxy::reverse::{spawn_reverse_proxy, ReverseProxyConfig};

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // app-A reads uploads slowly (a loaded HHVM worker); app-B is healthy.
    let app_a = appserver::spawn(
        "127.0.0.1:0".parse()?,
        AppServerConfig {
            server_name: "app-A".into(),
            restart_behavior: RestartBehavior::PartialPostReplay,
            read_delay_ms: 50,
            ..Default::default()
        },
    )
    .await?;
    let app_b = appserver::spawn(
        "127.0.0.1:0".parse()?,
        AppServerConfig {
            server_name: "app-B".into(),
            ..Default::default()
        },
    )
    .await?;

    let proxy = spawn_reverse_proxy(
        "127.0.0.1:0".parse()?,
        ReverseProxyConfig {
            upstreams: vec![app_a.addr, app_b.addr],
            upstream_timeout: Duration::from_secs(30),
            ..Default::default()
        },
    )
    .await?;
    println!(
        "proxy {} → app-A {} (slow), app-B {}",
        proxy.addr, app_a.addr, app_b.addr
    );

    // Start a 1 MiB upload; app-A's throttled reads stretch it over
    // seconds, guaranteeing the restart lands mid-body.
    let upload = Request::post("/upload/video", vec![0x5au8; 1024 * 1024]);
    let client = tokio::spawn({
        let addr = proxy.addr;
        async move {
            let mut stream = TcpStream::connect(addr).await.unwrap();
            stream.write_all(&serialize_request(&upload)).await.unwrap();
            let mut parser = ResponseParser::new();
            let mut buf = [0u8; 8192];
            loop {
                let n = stream.read(&mut buf).await.unwrap();
                assert!(n > 0, "connection closed without response");
                if let Some(resp) = parser.push(&buf[..n]).unwrap() {
                    return resp;
                }
            }
        }
    });

    // Mid-upload, app-A restarts for a release.
    tokio::time::sleep(Duration::from_millis(300)).await;
    println!("app-A restarting mid-upload → emits 379 Partial POST Replay");
    app_a.initiate_restart();

    let resp = client.await?;
    println!(
        "client saw: {} {} served by {:?}",
        resp.status.code,
        resp.status.reason,
        resp.headers.get("x-served-by")
    );
    assert_eq!(resp.status.code, 200, "the user must never see the restart");
    assert_eq!(resp.headers.get("x-served-by"), Some("app-B"));

    let handoffs = proxy.stats.ppr_handoffs.get();
    let replays = proxy.stats.ppr_replayed_ok.get();
    println!("proxy stats: {handoffs} PPR handoff(s), {replays} successful replay(s)");
    let (_, a379, _, _) = app_a.stats.snapshot();
    println!("app-A sent {a379} × 379 responses");
    println!("partial post replay confirmed ✔");
    Ok(())
}

//! Downstream Connection Reuse end to end: an MQTT subscriber keeps
//! receiving publishes while the Origin proxy relaying its tunnel
//! restarts — the tunnel is re-homed through another Origin to the same
//! broker, and the client's TCP connection never drops.
//!
//! ```sh
//! cargo run --example mqtt_dcr
//! ```

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::broker::server as broker;
use zero_downtime_release::proto::dcr::UserId;
use zero_downtime_release::proto::mqtt::{self, ConnectReturnCode, Packet, QoS, StreamDecoder};
use zero_downtime_release::proxy::mqtt_relay::{spawn_edge, spawn_origin};

struct Client {
    stream: TcpStream,
    decoder: StreamDecoder,
}

impl Client {
    async fn connect(edge: std::net::SocketAddr, user: UserId) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(edge).await?;
        let pkt = Packet::Connect {
            client_id: user.client_id(),
            keep_alive: 60,
            clean_session: true,
        };
        stream
            .write_all(&mqtt::encode(&pkt).expect("encodes"))
            .await?;
        let mut c = Client {
            stream,
            decoder: StreamDecoder::new(),
        };
        match c.recv().await? {
            Packet::ConnAck {
                code: ConnectReturnCode::Accepted,
                ..
            } => Ok(c),
            other => panic!("expected CONNACK, got {other:?}"),
        }
    }

    async fn send(&mut self, pkt: &Packet) -> std::io::Result<()> {
        self.stream
            .write_all(&mqtt::encode(pkt).expect("encodes"))
            .await
    }

    async fn recv(&mut self) -> std::io::Result<Packet> {
        let mut buf = [0u8; 8192];
        loop {
            if let Some(p) = self.decoder.next_packet().expect("valid mqtt") {
                return Ok(p);
            }
            let n = self.stream.read(&mut buf).await?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "closed",
                ));
            }
            self.decoder.extend(&buf[..n]);
        }
    }
}

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = broker::spawn("127.0.0.1:0".parse()?).await?;
    let origin1 = spawn_origin("127.0.0.1:0".parse()?, 1, vec![broker.addr], 5_000).await?;
    let origin2 = spawn_origin("127.0.0.1:0".parse()?, 2, vec![broker.addr], 5_000).await?;
    let edge = spawn_edge("127.0.0.1:0".parse()?, vec![origin1.addr, origin2.addr]).await?;
    println!(
        "broker {}, origins {} / {}, edge {}",
        broker.addr, origin1.addr, origin2.addr, edge.addr
    );

    // Subscriber tunnels through the edge (lands on origin 1).
    let mut subscriber = Client::connect(edge.addr, UserId(7)).await?;
    subscriber
        .send(&Packet::Subscribe {
            packet_id: 1,
            filters: vec![("notif/user-7".into(), QoS::AtMostOnce)],
        })
        .await?;
    subscriber.recv().await?; // SUBACK
    println!("subscriber connected and subscribed via origin 1");

    // Prove delivery works pre-restart.
    let mut publisher = Client::connect(edge.addr, UserId(8)).await?;
    publisher
        .send(&Packet::Publish {
            topic: "notif/user-7".into(),
            packet_id: None,
            payload: bytes::Bytes::from_static(b"before-restart"),
            qos: QoS::AtMostOnce,
            retain: false,
            dup: false,
        })
        .await?;
    if let Packet::Publish { payload, .. } = subscriber.recv().await? {
        println!("received: {:?}", std::str::from_utf8(&payload)?);
    }

    // Origin 1 restarts: it solicits the edge, which re-homes the tunnel
    // through origin 2 — the subscriber's connection never drops.
    println!("origin 1 draining (reconnect_solicitation → re_connect → connect_ack)…");
    origin1.drain();
    tokio::time::sleep(Duration::from_millis(300)).await;
    println!(
        "edge re-homed {} tunnel(s); broker accepted {} DCR re-connect(s)",
        edge.dcr_stats.rehomed_ok.get(),
        broker.core.stats().dcr_accepted
    );

    // Same client connection, post-restart delivery.
    publisher
        .send(&Packet::Publish {
            topic: "notif/user-7".into(),
            packet_id: None,
            payload: bytes::Bytes::from_static(b"after-restart"),
            qos: QoS::AtMostOnce,
            retain: false,
            dup: false,
        })
        .await?;
    if let Packet::Publish { payload, .. } = subscriber.recv().await? {
        println!("received: {:?}", std::str::from_utf8(&payload)?);
    }
    // Both the subscriber's and the publisher's tunnels rode origin 1, so
    // both were re-homed.
    assert!(broker.core.stats().dcr_accepted >= 1);
    println!("downstream connection reuse confirmed ✔");
    Ok(())
}

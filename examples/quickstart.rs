//! Quickstart: a minimal end-to-end stack and one zero-downtime restart.
//!
//! Boots two app servers and a takeover-capable proxy, sends traffic,
//! restarts the proxy via Socket Takeover while requests keep flowing, and
//! prints what the client saw.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

use zero_downtime_release::appserver::{self, AppServerConfig};
use zero_downtime_release::proto::http1::{serialize_request, Request, Response, ResponseParser};
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

async fn send(addr: std::net::SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr).await?;
    stream.write_all(&serialize_request(req)).await?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = stream.read(&mut buf).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed",
            ));
        }
        if let Some(resp) = parser.push(&buf[..n]).map_err(std::io::Error::other)? {
            return Ok(resp);
        }
    }
}

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two app servers ("HHVM replicas").
    let app_a = appserver::spawn(
        "127.0.0.1:0".parse()?,
        AppServerConfig {
            server_name: "app-A".into(),
            ..Default::default()
        },
    )
    .await?;
    let app_b = appserver::spawn(
        "127.0.0.1:0".parse()?,
        AppServerConfig {
            server_name: "app-B".into(),
            ..Default::default()
        },
    )
    .await?;
    println!("app servers: {} (A), {} (B)", app_a.addr, app_b.addr);

    // A takeover-capable proxy fronting them.
    let cfg = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: vec![app_a.addr, app_b.addr],
            ..Default::default()
        },
        takeover_path: std::env::temp_dir()
            .join(format!("zdr-quickstart-{}.sock", std::process::id())),
        drain_ms: 2_000,
    };
    let gen0 = ProxyInstance::bind_fresh("127.0.0.1:0".parse()?, cfg.clone()).await?;
    let vip = gen0.addr;
    println!("proxy VIP: {vip} (generation {})", gen0.generation);

    // Continuous client load.
    let load = tokio::spawn(async move {
        let mut ok = 0u32;
        let mut failed = 0u32;
        for i in 0..300 {
            match send(vip, &Request::get(format!("/feed/{i}"))).await {
                Ok(resp) if resp.status.code == 200 => ok += 1,
                _ => failed += 1,
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        (ok, failed)
    });

    // Release! The new instance takes the listening socket over.
    tokio::time::sleep(Duration::from_millis(200)).await;
    println!("beginning zero-downtime restart…");
    let old_task = tokio::spawn(gen0.serve_one_takeover());
    tokio::time::sleep(Duration::from_millis(50)).await;
    let gen1 = ProxyInstance::takeover_from(cfg).await?;
    let drained = old_task.await.expect("join")?;
    println!(
        "generation {} serving; generation {} draining",
        gen1.generation, drained.generation
    );

    let (ok, failed) = load.await.expect("load task");
    println!("client saw: {ok} successful requests, {failed} failures");
    assert_eq!(failed, 0, "zero downtime means zero failures");
    println!("zero downtime confirmed ✔");
    Ok(())
}

//! # zero-downtime-release
//!
//! A from-scratch Rust implementation of **"Zero Downtime Release:
//! Disruption-free Load Balancing of a Multi-Billion User Website"**
//! (SIGCOMM '20): the release framework Facebook uses to restart its
//! global fleet of L7 load balancers and app servers without users
//! noticing.
//!
//! Three mechanisms, all implemented here against real sockets:
//!
//! * **Socket Takeover** ([`net`], [`proxy::takeover`]) — pass every
//!   listening socket FD (TCP and UDP) from the old proxy process to the
//!   new one over a UNIX socket with `SCM_RIGHTS`; the new process serves
//!   new connections and answers health checks immediately while the old
//!   one drains. QUIC-like packets for draining flows are user-space
//!   routed by connection ID.
//! * **Downstream Connection Reuse** ([`proxy::mqtt_relay`], [`broker`]) —
//!   a restarting Origin proxy solicits the Edge to re-home each MQTT
//!   tunnel through another Origin to the same broker (located by
//!   consistent-hashing the user id); end-user connections never drop.
//! * **Partial Post Replay** ([`appserver`], [`proxy::reverse`]) — a
//!   restarting app server answers in-flight POSTs with HTTP **379**
//!   carrying the partial body; the proxy rebuilds and replays the request
//!   to a healthy server (up to 10 attempts) and the user sees only a 200.
//!
//! The release *framework* (strategies, drain lifecycles, batch
//! scheduling, release calendars, disruption taxonomy) lives in [`core`],
//! and a deterministic fleet simulator ([`sim`]) reproduces every figure
//! of the paper's evaluation — see `EXPERIMENTS.md` and the `zdr-bench`
//! figure binaries.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::time::Duration;
//! use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
//! use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};
//!
//! # async fn demo() -> Result<(), Box<dyn std::error::Error>> {
//! // Generation 0 binds the VIP fresh:
//! let cfg = ProxyInstanceConfig {
//!     reverse: ReverseProxyConfig {
//!         upstreams: vec!["127.0.0.1:8080".parse()?],
//!         ..Default::default()
//!     },
//!     takeover_path: "/tmp/proxy-takeover.sock".into(),
//!     drain_ms: 20 * 60 * 1000,
//! };
//! let gen0 = ProxyInstance::bind_fresh("127.0.0.1:443".parse()?, cfg.clone()).await?;
//!
//! // ... release time: the NEW process takes the sockets over ...
//! let old = tokio::spawn(gen0.serve_one_takeover());
//! let gen1 = ProxyInstance::takeover_from(cfg).await?;   // serves instantly
//! let drained = old.await.expect("join")?;                // old instance drains
//! assert_eq!(gen1.generation, 1);
//! # drop(drained);
//! # Ok(())
//! # }
//! ```

pub mod l4d;

pub use zdr_appserver as appserver;
pub use zdr_broker as broker;
pub use zdr_core as core;
pub use zdr_l4lb as l4lb;
pub use zdr_net as net;
pub use zdr_proto as proto;
pub use zdr_proxy as proxy;
pub use zdr_sim as sim;

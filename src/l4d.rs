//! The L4 load-balancing daemon: `zdr-l4lb`'s forwarding plane on real
//! sockets — the Katran position in Fig. 1.
//!
//! Accepts TCP connections on the cluster VIP, picks an L7 proxy with the
//! Maglev + LRU-connection-table forwarder, and splices bytes both ways.
//! A background prober GETs `/proxygen/health` on every backend and feeds
//! the verdicts to the health state machine; Socket Takeover keeps those
//! probes green through L7 releases, so "Zero Downtime Restart stays
//! transparent to Katran" (§6.1.2).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use zdr_l4lb::forwarder::{ForwarderConfig, ForwarderStats, L4Forwarder};
use zdr_l4lb::hash::FlowKey;
use zdr_l4lb::health::HealthState;
use zdr_l4lb::BackendId;
use zdr_proto::http1::{serialize_request, Request, ResponseParser};

/// L4 daemon configuration.
#[derive(Debug, Clone)]
pub struct L4Config {
    /// The L7 proxies behind this L4.
    pub backends: Vec<SocketAddr>,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// Forwarder tuning (Maglev size, conn-table capacity, thresholds).
    pub forwarder: ForwarderConfig,
}

impl Default for L4Config {
    fn default() -> Self {
        L4Config {
            backends: Vec::new(),
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            forwarder: ForwarderConfig {
                table_size: 65_537,
                ..ForwarderConfig::default()
            },
        }
    }
}

/// A running L4 daemon.
#[derive(Debug)]
pub struct L4Handle {
    /// The cluster VIP.
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    accept_task: tokio::task::JoinHandle<()>,
    probe_task: tokio::task::JoinHandle<()>,
}

#[derive(Debug)]
struct Shared {
    forwarder: Mutex<L4Forwarder>,
    backends: Vec<SocketAddr>,
}

impl L4Handle {
    /// Routing counters.
    pub fn stats(&self) -> ForwarderStats {
        self.shared.forwarder.lock().stats()
    }

    /// Health state of backend `i`.
    pub fn backend_state(&self, i: usize) -> Option<HealthState> {
        self.shared
            .forwarder
            .lock()
            .backend_state(BackendId(i as u32))
    }

    /// Currently healthy backends (addresses).
    pub fn healthy_backends(&self) -> Vec<SocketAddr> {
        let fwd = self.shared.forwarder.lock();
        fwd.healthy_backends()
            .into_iter()
            .map(|b| self.shared.backends[b.0 as usize])
            .collect()
    }
}

impl Drop for L4Handle {
    fn drop(&mut self) {
        self.accept_task.abort();
        self.probe_task.abort();
    }
}

/// Binds and spawns the L4 daemon.
pub async fn spawn(addr: SocketAddr, config: L4Config) -> std::io::Result<L4Handle> {
    assert!(!config.backends.is_empty(), "l4 needs at least one backend");
    let listener = TcpListener::bind(addr).await?;
    let addr = listener.local_addr()?;

    let ids: Vec<BackendId> = (0..config.backends.len() as u32).map(BackendId).collect();
    let forwarder = L4Forwarder::new(ids, config.forwarder);
    let shared = Arc::new(Shared {
        forwarder: Mutex::new(forwarder),
        backends: config.backends.clone(),
    });

    // Health prober (Fig. 5 step F's observer side).
    let probe_shared = Arc::clone(&shared);
    let probe_interval = config.probe_interval;
    let probe_timeout = config.probe_timeout;
    let probe_task = tokio::spawn(async move {
        loop {
            for (i, &backend) in probe_shared.backends.iter().enumerate() {
                let ok = probe_health(backend, probe_timeout).await;
                probe_shared
                    .forwarder
                    .lock()
                    .report_probe(BackendId(i as u32), ok);
            }
            tokio::time::sleep(probe_interval).await;
        }
    });

    // Forwarding plane.
    let accept_shared = Arc::clone(&shared);
    let accept_task = tokio::spawn(async move {
        while let Ok((client, peer)) = listener.accept().await {
            let shared = Arc::clone(&accept_shared);
            tokio::spawn(async move {
                let _ = forward(client, peer, addr, shared).await;
            });
        }
    });

    Ok(L4Handle {
        addr,
        shared,
        accept_task,
        probe_task,
    })
}

/// One HTTP health probe against `/proxygen/health`.
async fn probe_health(backend: SocketAddr, timeout: Duration) -> bool {
    let attempt = async {
        let mut conn = TcpStream::connect(backend).await.ok()?;
        let req = Request::get("/proxygen/health");
        conn.write_all(&serialize_request(&req)).await.ok()?;
        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 2048];
        loop {
            let n = conn.read(&mut buf).await.ok()?;
            if n == 0 {
                return None;
            }
            if let Ok(Some(resp)) = parser.push(&buf[..n]) {
                return Some(resp.status.code == 200);
            }
        }
    };
    matches!(tokio::time::timeout(timeout, attempt).await, Ok(Some(true)))
}

/// Splices one client connection to its Maglev-chosen backend.
async fn forward(
    mut client: TcpStream,
    peer: SocketAddr,
    vip: SocketAddr,
    shared: Arc<Shared>,
) -> std::io::Result<()> {
    let flow = FlowKey::tcp(peer, vip);
    let backend = {
        let mut fwd = shared.forwarder.lock();
        fwd.route(flow)
    };
    let Some(backend) = backend else {
        return Ok(()); // no healthy backend: connection drops (counted)
    };
    let backend_addr = shared.backends[backend.0 as usize];
    let mut upstream = match TcpStream::connect(backend_addr).await {
        Ok(s) => s,
        Err(_) => return Ok(()),
    };
    let _ = tokio::io::copy_bidirectional(&mut client, &mut upstream).await;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn probe_reports_false_for_dead_backend() {
        assert!(!probe_health("127.0.0.1:1".parse().unwrap(), Duration::from_millis(200)).await);
    }
}

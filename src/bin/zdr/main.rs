//! `zdr` — the multi-tool daemon for the Zero Downtime Release stack.
//!
//! One binary, five roles, so a real multi-process deployment can be
//! driven from the shell (and from the cross-process integration tests):
//!
//! ```sh
//! zdr broker     --listen 127.0.0.1:1883
//! zdr app-server --listen 127.0.0.1:8080 --name web-1
//! zdr origin     --listen 127.0.0.1:9001 --id 1 --broker 127.0.0.1:1883
//! zdr edge       --listen 127.0.0.1:9000 --origin 127.0.0.1:9001 --origin 127.0.0.1:9002
//! zdr proxy      --listen 127.0.0.1:443 --upstream 127.0.0.1:8080 \
//!                --takeover-path /run/zdr-proxy.sock
//! ```
//!
//! A release of the `proxy` role is just starting the new binary with
//! `--takeover`: it receives the listening sockets from the running
//! process via SCM_RIGHTS, and the old process drains and exits:
//!
//! ```sh
//! zdr proxy --takeover --upstream 127.0.0.1:8080 \
//!           --takeover-path /run/zdr-proxy.sock
//! ```
//!
//! The config-plane roles (proxy / quic / origin / edge) can instead load
//! every tunable from a TOML file and hot-reload it without a restart:
//!
//! ```sh
//! zdr check /etc/zdr.toml                  # dry-run validation
//! zdr proxy --config /etc/zdr.toml --takeover-path /run/zdr-proxy.sock
//! kill -HUP <pid>                          # re-read + hot-apply
//! curl -X POST localhost:<admin>/config/reload   # ditto, over HTTP
//! ```
//!
//! Every role prints `READY <addr>` on stdout once serving, so scripts and
//! tests can synchronize on it. Unknown flags are rejected (with a
//! nearest-match hint), never silently ignored.

mod doctor;
mod orchestrate;

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use zero_downtime_release::appserver::{self, AppServerConfig, RestartBehavior};
use zero_downtime_release::broker::server as broker;
use zero_downtime_release::core::config::{ConfigStore, ZdrConfig, BOOT_EPOCH, FIELDS};
use zero_downtime_release::core::telemetry::{AuditorConfig, DisruptionAuditor, Telemetry};
use zero_downtime_release::proxy::admin::{spawn_admin_full, AdminHandle, TracesFn};
use zero_downtime_release::proxy::conn_tracker::ConnTracker;
use zero_downtime_release::proxy::mqtt_relay::{spawn_edge_with, spawn_origin_with};
use zero_downtime_release::proxy::resilience::{Resilience, ResilienceConfig};
use zero_downtime_release::proxy::reverse::ReverseProxyConfig;
use zero_downtime_release::proxy::service::DrainState;
use zero_downtime_release::proxy::stats::{ProxyStats, StatsSnapshot};
use zero_downtime_release::proxy::takeover::{ProxyInstance, ProxyInstanceConfig};

const USAGE: &str = "\
zdr — Zero Downtime Release stack daemon

USAGE:
  zdr <role> [options]
  zdr check <file>       validate a config file and exit (reload dry-run)
  zdr doctor [options]   preflight a host for a release (ok/warn/critical)
  zdr orchestrate [options]
                         drive a canary-gated release train across nodes

ROLES:
  broker       MQTT pub/sub broker
  app-server   HHVM-like app server with Partial Post Replay
  origin       Origin MQTT relay (DCR-capable)
  edge         Edge MQTT relay (DCR-capable)
  proxy        HTTP reverse proxy with Socket Takeover
  quic         QUIC-like UDP echo service with Socket Takeover
  l4           Katran-like L4 forwarder (Maglev + LRU + health checks)

COMMON OPTIONS:
  --listen ADDR          bind address (default 127.0.0.1:0)
  --stats-json           print `TIMELINE <json>` (the release phase journal)
                         and `STATS <json>` — one merged snapshot of every
                         counter, latency histogram, and timeline event —
                         when the role drains or exits

CONFIG PLANE (proxy / quic / origin / edge):
  --config FILE          load every tunable from a TOML file instead of
                         per-field flags (the two are mutually exclusive).
                         SIGHUP — or POST /config/reload on the admin
                         endpoint — re-reads the file, validates it, and
                         hot-applies it to the live service: no restart,
                         no dropped connection. Boot-only fields (admin
                         port, shard shapes) are rejected on reload;
                         apply those with a takeover.

TELEMETRY (proxy):
  --admin-port PORT      loopback admin endpoint serving /stats, /healthz,
                         /metrics, /timeline, /traces, and POST
                         /config/reload; 0 picks a free port; prints
                         `ADMIN <addr>` once bound (scrapable
                         mid-takeover). With --config, the endpoint comes
                         from the file's [admin] port instead (0 = off)
  --audit                sample the disruption signals (5xx, proxy errors,
                         resets, MQTT drops) against an EWMA baseline; the
                         release window opens at drain; prints `AUDIT <json>`
  --fleet-admin          bind the admin endpoint on an ephemeral port even
                         when booting from --config (whose [admin] port is
                         boot-only and would collide with the draining
                         predecessor's). `zdr orchestrate` passes this to
                         every successor it spawns so it can scrape /stats
                         per canary window

TRACING (proxy / quic / origin / edge):
  --trace-sample N       record a span tree for one request in N (0 = off,
                         the default; 1 = every request). A sampled trace
                         context arriving from an upstream hop is always
                         adopted regardless of N, so one sampling decision
                         at the edge covers the whole chain. Spans ride
                         the admin endpoint's /traces route

RESILIENCE (proxy / edge / origin / quic):
  --shed-max-active N    shed new connections at/above N active (0 = off)
  --breaker-threshold N  consecutive upstream failures that open the
                         circuit breaker (default 3)
  --retry-reserve N      retry-budget reserve tokens (default 20)
  --retry-deposit-permille N
                         budget millitokens deposited per success
                         (default 100 — retries add at most ~10% load)
  --admit-rate N         per-client admission: new connections allowed per
                         sliding window (0 = off, fail open — the default);
                         refusals answer HTTP 429 / MQTT CONNACK refuse /
                         QUIC CONNECTION_CLOSE ahead of the shed gate
  --admit-window-ms MS   admission sliding-window width (default 1000);
                         the per-client budget halves while draining or
                         while storm protection is armed
  --protection-arm-threshold N
                         timeout/refusal/reset/connect deltas per probe
                         window that arm storm protection (0 = off, the
                         default); armed state + reason ride /stats,
                         /metrics, and the release timeline
  --protection-disarm-successes N
                         consecutive stable probe windows required before
                         protection disarms (default 3)

app-server:
  --name NAME            identity reported in x-served-by (default app-0)
  --read-delay MS        throttle body reads (default 0)
  --drain-ms MS          drain period (default 12000)
  --no-ppr               answer restarts with 500 instead of 379
  --restart-after MS     self-initiate a restart after MS (for demos)

origin:
  --id N                 origin id in solicitations (default 1)
  --broker ADDR          broker address (repeatable)
  --drain-after MS       begin DCR drain after MS (for demos)
  --drain-ms MS          drain deadline advertised in DCR solicitations
                         (default 5000; hot-reloadable via --config)
  --trunk                multiplex tunnels over an HTTP/2-like trunk
                         (GOAWAY-driven DCR) instead of per-tunnel TCP

edge:
  --origin ADDR          origin address (repeatable)
  --trunk                match the origins' trunk mode

proxy:
  --upstream ADDR        app-server address (repeatable)
  --takeover-path PATH   UNIX socket for takeover (required)
  --takeover             take sockets over from the running instance
  --drain-ms MS          drain period advertised on handover (default 2000)
  --supervised           supervise the release: retry failed attempts,
                         watch the successor's health, roll back on failure
                         (prints ROLLBACK/ABORTED and keeps serving)
  --watch-ms MS          post-confirm health watch window (default 10000)
  --max-attempts N       takeover attempts before aborting (default 5)
  --health-report-ms MS  successor: delay before reporting health
                         (default 200; with --takeover --supervised)
  --report-unhealthy     successor: report unhealthy (for failure drills)

quic:
  --takeover-path PATH   UNIX socket for takeover (required)
  --takeover             take the SO_REUSEPORT group over
  --sockets N            ring size (default 2)
  --drain-ms MS          drain period (default 2000)

l4:
  --backend ADDR         L7 proxy address (repeatable)
  --probe-interval-ms MS health-probe cadence (default 200)

doctor:
  --config FILE          validate FILE and check its upstreams (repeatable)
  --takeover-path PATH   check the takeover socket's directory (repeatable)
  --upstream ADDR        check TCP reachability (repeatable)
  --admin ADDR           compare a live proxy's config against --config
                         (staleness check; needs exactly one --config)
  Always checks host headroom against a drain's doubling of socket
  count: fd soft limit, conntrack table fill, ephemeral-port usage.
  Prints one `DOCTOR ok|warn|critical <check>: <detail>` line per check
  and a `DOCTOR VERDICT <worst>` summary; exits 1 on any critical.

orchestrate:
  --node VIP=SOCK=NEWCFG=ROLLBACKCFG
                         one cluster of the train (repeatable, in train
                         order): the VIP its proxy serves, its takeover
                         socket, the config to release, and the config to
                         revert to on rollback
  --journal PATH         write-ahead journal (JSON lines); an existing
                         journal resumes the train — a crash mid-batch
                         rolls that batch back and retries it. Per-batch
                         fleet reports land beside it in PATH.fleet and
                         are announced as `FLEET_REPORT <json>`
  --fresh                discard an existing journal and start over
  --force                proceed despite critical preflight findings
  --batch-size N         clusters per batch (default 1)
  --stagger-ms MS        gap between batches (default 0)
  --window-ms MS         canary observation window length (default 500)
  --windows N            clean windows required to promote (default 1)
  --probes-per-window N  probe requests per window (default 20)
  --max-missed N         lost windows tolerated per cluster (default 3)
  --fault SPEC           inject a controller fault (repeatable):
                         controller-crash@N | drop-verdict@N |
                         replay-crash@N | replay-truncate@N |
                         mqtt-canary-fail@N (the Nth /stats scrape reports
                         a generation dropping every MQTT tunnel while
                         HTTP probes stay green) | scrape-drop@N (the Nth
                         scrape is lost — that window degrades to
                         HTTP-only signals)
  Exit codes: 0 completed, 2 refused (preflight/stale journal),
  3 halted (batch rolled back), 7 injected controller crash.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

/// The resilience flags shared by every config-plane role.
const RESILIENCE_FLAGS: &[&str] = &[
    "--shed-max-active",
    "--breaker-threshold",
    "--retry-reserve",
    "--retry-deposit-permille",
    "--admit-rate",
    "--admit-window-ms",
    "--protection-arm-threshold",
    "--protection-disarm-successes",
];

/// The `(value_flags, bool_flags)` a role accepts, or `None` for an
/// unknown role. This is the single source of truth for strict flag
/// validation: anything not listed here is rejected at startup.
fn role_flags(role: &str) -> Option<(Vec<&'static str>, Vec<&'static str>)> {
    let mut value = vec!["--listen"];
    let mut boolean = vec!["--stats-json"];
    match role {
        "broker" => {}
        "app-server" => {
            value.extend(["--name", "--read-delay", "--drain-ms", "--restart-after"]);
            boolean.push("--no-ppr");
        }
        "origin" => {
            value.extend([
                "--config",
                "--id",
                "--broker",
                "--drain-after",
                "--drain-ms",
                "--trace-sample",
            ]);
            value.extend(RESILIENCE_FLAGS);
            boolean.push("--trunk");
        }
        "edge" => {
            value.extend(["--config", "--origin", "--trace-sample"]);
            value.extend(RESILIENCE_FLAGS);
            boolean.push("--trunk");
        }
        "proxy" => {
            value.extend([
                "--config",
                "--upstream",
                "--takeover-path",
                "--drain-ms",
                "--watch-ms",
                "--max-attempts",
                "--health-report-ms",
                "--admin-port",
                "--trace-sample",
            ]);
            value.extend(RESILIENCE_FLAGS);
            boolean.extend([
                "--takeover",
                "--supervised",
                "--report-unhealthy",
                "--audit",
                "--fleet-admin",
            ]);
        }
        "quic" => {
            value.extend([
                "--config",
                "--takeover-path",
                "--sockets",
                "--drain-ms",
                "--trace-sample",
            ]);
            value.extend(RESILIENCE_FLAGS);
            boolean.push("--takeover");
        }
        "l4" => value.extend(["--backend", "--probe-interval-ms"]),
        _ => return None,
    }
    Some((value, boolean))
}

/// Edit distance for the did-you-mean hint on unknown flags.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest known flag within an edit distance worth suggesting.
fn closest_flag<'a>(unknown: &str, known: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    known
        .map(|k| (levenshtein(unknown, k), k))
        .filter(|(d, _)| *d <= 3)
        .min_by_key(|(d, _)| *d)
        .map(|(_, k)| k)
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Args {
    items: Vec<String>,
}

impl Args {
    fn new() -> Self {
        Args {
            items: std::env::args().skip(2).collect(),
        }
    }

    /// Strict validation against the role's flag tables: unknown flags
    /// and stray positional arguments are errors, with a nearest-match
    /// hint. (The old parser silently ignored anything it didn't look up
    /// — a typo like `--shed-max-actve` was a no-op with the default
    /// limits, the worst possible failure mode for an overload knob.)
    fn validate(&self, value_flags: &[&str], bool_flags: &[&str]) -> Result<(), String> {
        let mut i = 0;
        while i < self.items.len() {
            let item = self.items[i].as_str();
            if value_flags.contains(&item) {
                if self.items.get(i + 1).is_none() {
                    return Err(format!("{item} requires a value"));
                }
                i += 2;
            } else if bool_flags.contains(&item) {
                i += 1;
            } else if item.starts_with("--") {
                let known = value_flags.iter().chain(bool_flags.iter()).copied();
                return Err(match closest_flag(item, known) {
                    Some(s) => format!("unknown flag {item} (did you mean {s}?)"),
                    None => format!("unknown flag {item}"),
                });
            } else {
                return Err(format!("unexpected argument {item:?}"));
            }
        }
        Ok(())
    }

    fn flag(&self, name: &str) -> bool {
        self.items.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.items.get(i + 1))
            .map(String::as_str)
    }

    fn values(&self, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for (i, a) in self.items.iter().enumerate() {
            if a == name {
                if let Some(v) = self.items.get(i + 1) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    fn addr(&self, name: &str, default: &str) -> Result<SocketAddr, String> {
        self.value(name)
            .unwrap_or(default)
            .parse()
            .map_err(|e| format!("bad {name}: {e}"))
    }

    fn addrs(&self, name: &str) -> Result<Vec<SocketAddr>, String> {
        self.values(name)
            .into_iter()
            .map(|v| v.parse().map_err(|e| format!("bad {name} {v}: {e}")))
            .collect()
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad {name}: {e}")),
        }
    }
}

// ---------------------------------------------------------------------
// Config plane
// ---------------------------------------------------------------------

/// The process-wide config plane: the versioned store every service reads
/// snapshots from, plus the file path reloads re-read (None = flags-only
/// boot, reloads unavailable).
struct ConfigPlane {
    store: Arc<ConfigStore>,
    path: Option<PathBuf>,
}

impl ConfigPlane {
    /// The reload closure shared by SIGHUP and `POST /config/reload`:
    /// re-read the file, parse, validate, publish. `None` without a file.
    fn reload(&self) -> Option<Arc<ReloadFn>> {
        let path = self.path.clone()?;
        let store = Arc::clone(&self.store);
        Some(Arc::new(move || {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| vec![format!("read {}: {e}", path.display())])?;
            let cfg = ZdrConfig::from_toml(&src)?;
            store.publish(cfg)
        }))
    }

    /// Stamps the live config epoch + rendered field map onto a snapshot,
    /// so `/stats`, `/metrics` (`zdr_config_epoch`), and `STATS` lines all
    /// report which config generation produced the counters.
    fn stamp(&self, mut snap: StatsSnapshot) -> StatsSnapshot {
        snap.config_epoch = self.store.epoch();
        snap.config = self.store.current().render_map();
        snap
    }
}

/// Reads and fully validates a config file (the `zdr check` body and the
/// `--config` boot path share this, so a file that checks clean boots).
fn check_config_file(path: &Path) -> Result<ZdrConfig, Vec<String>> {
    let src =
        std::fs::read_to_string(path).map_err(|e| vec![format!("read {}: {e}", path.display())])?;
    let cfg = ZdrConfig::from_toml(&src)?;
    cfg.validate()?;
    Ok(cfg)
}

/// Builds the boot config: `--config FILE` (authoritative — per-field
/// flags conflict with it, since the next reload would silently shadow
/// them) or the role's config flags over defaults. `default_drain_ms`
/// preserves each role's historical drain default when neither source
/// names one.
fn config_plane(
    args: &Args,
    value_flags: &[&str],
    default_drain_ms: u64,
) -> Result<ConfigPlane, String> {
    let path = args.value("--config").map(PathBuf::from);
    let cfg = match &path {
        Some(p) => {
            for item in &args.items {
                if ZdrConfig::FLAGS.contains(&item.as_str()) {
                    return Err(format!(
                        "{item} conflicts with --config; set the field in the file"
                    ));
                }
            }
            check_config_file(p)
                .map_err(|errs| format!("config rejected:\n  {}", errs.join("\n  ")))?
        }
        None => {
            let mut cfg = ZdrConfig::default();
            cfg.drain.drain_ms = default_drain_ms;
            let mut i = 0;
            while i < args.items.len() {
                let item = args.items[i].as_str();
                if ZdrConfig::FLAGS.contains(&item) {
                    let v = args
                        .items
                        .get(i + 1)
                        .map(String::as_str)
                        .unwrap_or_default();
                    cfg.set_flag(item, v)?;
                    i += 2;
                } else if value_flags.contains(&item) {
                    i += 2; // non-config value flag: skip its value too
                } else {
                    i += 1;
                }
            }
            cfg.validate()
                .map_err(|errs| format!("boot config invalid:\n  {}", errs.join("\n  ")))?;
            cfg
        }
    };
    Ok(ConfigPlane {
        store: Arc::new(ConfigStore::new(cfg)),
        path,
    })
}

/// Hot-reload on SIGHUP: the classic daemon contract, same closure the
/// admin endpoint's `POST /config/reload` runs. `None` when booted from
/// flags (nothing to re-read).
fn spawn_sighup_reload(plane: &ConfigPlane) -> Option<tokio::task::JoinHandle<()>> {
    let reload = plane.reload()?;
    Some(tokio::spawn(async move {
        use tokio::signal::unix::{signal, SignalKind};
        let Ok(mut hup) = signal(SignalKind::hangup()) else {
            return;
        };
        while hup.recv().await.is_some() {
            match reload() {
                Ok(epoch) => eprintln!("config reloaded (epoch {epoch})"),
                Err(errs) => {
                    eprintln!("config reload rejected:");
                    for e in errs {
                        eprintln!("  {e}");
                    }
                }
            }
        }
    }))
}

/// `zdr check <file>`: the reload dry-run. Exit 0 and the canonical
/// rendering on success; exit 1 with every error at once on failure.
fn run_check(args: &Args) -> ExitCode {
    let Some(path) = args.items.first() else {
        eprintln!("error: check requires a config file path\n\nUSAGE:\n  zdr check <file>");
        return ExitCode::FAILURE;
    };
    if let Some(extra) = args.items.get(1) {
        eprintln!("error: unexpected argument {extra:?} after the config file");
        return ExitCode::FAILURE;
    }
    match check_config_file(Path::new(path)) {
        Ok(cfg) => {
            let hot = FIELDS.iter().filter(|s| s.hot).count();
            println!(
                "OK {path}: {} fields valid ({hot} hot-reloadable, {} boot-only)",
                FIELDS.len(),
                FIELDS.len() - hot
            );
            for (name, value) in cfg.render_map() {
                println!("  {name} = {value}");
            }
            ExitCode::SUCCESS
        }
        Err(errs) => {
            eprintln!("config rejected: {path}");
            for e in errs {
                eprintln!("  {e}");
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let role = match std::env::args().nth(1) {
        Some(r) => r,
        None => return fail("missing role"),
    };
    let args = Args::new();
    match role.as_str() {
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        "check" => return run_check(&args),
        "doctor" => return doctor::run(&args),
        "orchestrate" => return orchestrate::run(&args),
        _ => {}
    }
    let Some((value_flags, bool_flags)) = role_flags(&role) else {
        return fail(&format!("unknown role {role:?}"));
    };
    if let Err(msg) = args.validate(&value_flags, &bool_flags) {
        return fail(&msg);
    }
    // PANIC-OK: runtime construction failing at boot (fd/thread limits) is
    // unrecoverable; dying before serving is the correct behaviour.
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    let result = rt.block_on(async {
        match role.as_str() {
            "broker" => run_broker(&args).await,
            "app-server" => run_app_server(&args).await,
            "origin" => run_origin(&args).await,
            "edge" => run_edge(&args).await,
            "proxy" => run_proxy(&args).await,
            "quic" => run_quic(&args).await,
            "l4" => run_l4(&args).await,
            other => Err(format!("unknown role {other:?}")),
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}

/// Retries a takeover request for a few seconds: the predecessor binds its
/// takeover socket lazily, so a fresh successor can out-race it.
async fn takeover_with_retry<T, F, Fut>(mut attempt: F) -> Result<T, String>
where
    F: FnMut() -> Fut,
    Fut: std::future::Future<Output = zero_downtime_release::net::Result<T>>,
{
    let mut last = String::new();
    for _ in 0..40 {
        match attempt().await {
            Ok(v) => return Ok(v),
            Err(e) => last = e.to_string(),
        }
        tokio::time::sleep(Duration::from_millis(100)).await;
    }
    Err(format!("takeover failed after retries: {last}"))
}

fn ready(addr: SocketAddr) {
    // Synchronization point for scripts/tests.
    announce(&format!("READY {addr}"));
}

fn announce(line: &str) {
    // Write errors are swallowed on purpose: a fleet proxy spawned by
    // `zdr orchestrate` outlives its controller, and once the controller
    // exits the pipe's read end is gone — a panicking println! here would
    // kill the serving process at its next announcement.
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

async fn wait_forever() {
    let _ = tokio::signal::ctrl_c().await;
}

/// Emits the unified snapshot as one `STATS <json>` line when
/// `--stats-json` was given. Every role funnels through this — the whole
/// point of [`StatsSnapshot`] is that experiments and tests parse one
/// merged view instead of scraping per-module counters.
fn dump_stats(args: &Args, snapshot: &StatsSnapshot) {
    if args.flag("--stats-json") {
        // PANIC-OK: both are plain derive(Serialize) structs of integers
        // and strings; serialization cannot fail.
        announce(&format!(
            "TIMELINE {}",
            serde_json::to_string(&snapshot.telemetry.timeline).expect("timeline serializes")
        ));
        announce(&format!(
            "STATS {}",
            serde_json::to_string(snapshot).expect("snapshot serializes")
        ));
    }
}

/// Live scrape sources behind one lock, so the supervised loop can point
/// the admin endpoint and the auditor at a rebuilt instance after a
/// rollback without rebinding the admin port.
struct ScrapeSources {
    stats: Arc<ProxyStats>,
    tracker: Arc<ConnTracker>,
    drain: Arc<DrainState>,
    resilience: Arc<Resilience>,
}

type SharedSources = Arc<parking_lot::Mutex<ScrapeSources>>;

fn sources_of(instance: &ProxyInstance) -> ScrapeSources {
    ScrapeSources {
        stats: instance.stats(),
        tracker: Arc::clone(instance.reverse.tracker()),
        drain: Arc::clone(instance.reverse.state()),
        resilience: Arc::clone(instance.reverse.resilience()),
    }
}

/// Ticks the storm detector every 50 ms so protection mode observes quiet
/// probe windows (and disarms) even when no new connection arrives to tick
/// it inline from the accept path.
fn spawn_protection_ticker(sources: &SharedSources) -> tokio::task::JoinHandle<()> {
    let task_sources = Arc::clone(sources);
    tokio::spawn(async move {
        loop {
            {
                let s = task_sources.lock();
                s.resilience.protection_tick(&s.stats);
            }
            tokio::time::sleep(Duration::from_millis(50)).await;
        }
    })
}

/// Applies `--trace-sample N` to a service's tracer: record the span tree
/// of one locally-originated request in N (0 leaves sampling off — traces
/// adopted from upstream hops still record either way).
fn apply_trace_sample(args: &Args, telemetry: &Telemetry) -> Result<(), String> {
    let n = args.u64_or("--trace-sample", 0)?;
    if n > 0 {
        telemetry.tracer.set_sample_every(n);
    }
    Ok(())
}

/// Spawns the admin endpoint and prints `ADMIN <addr>`. The port comes
/// from `--admin-port` (flags boot) or the file's `[admin] port` (config
/// boot; 0 = disabled). With a config file wired, the endpoint also
/// serves `POST /config/reload`.
async fn maybe_spawn_admin(
    args: &Args,
    sources: &SharedSources,
    plane: &ConfigPlane,
) -> Result<Option<AdminHandle>, String> {
    // --fleet-admin: an orchestrator-spawned successor always binds an
    // ephemeral admin port — a fixed [admin] port from the config file
    // would collide with the still-draining predecessor's endpoint.
    let port: u16 = if args.flag("--fleet-admin") {
        0
    } else {
        match (args.value("--admin-port"), &plane.path) {
            (Some(p), _) => p.parse().map_err(|e| format!("bad --admin-port: {e}"))?,
            (None, Some(_)) => {
                let port = plane.store.current().admin.port;
                if port == 0 {
                    return Ok(None);
                }
                port
            }
            (None, None) => return Ok(None),
        }
    };
    let snap_src = Arc::clone(sources);
    let snap_store = Arc::clone(&plane.store);
    let health_src = Arc::clone(sources);
    let snapshot = move || {
        let s = snap_src.lock();
        let mut snap = s.stats.snapshot().merged(&s.tracker.snapshot());
        snap.config_epoch = snap_store.epoch();
        snap.config = snap_store.current().render_map();
        snap
    };
    let healthy = move || !health_src.lock().drain.is_draining();
    let traces_src = Arc::clone(sources);
    let traces: Arc<TracesFn> =
        Arc::new(move || traces_src.lock().stats.telemetry.tracer.snapshot());
    let handle = spawn_admin_full(port, snapshot, healthy, plane.reload(), Some(traces))
        .await
        .map_err(|e| format!("admin endpoint: {e}"))?;
    announce(&format!("ADMIN {}", handle.addr));
    Ok(Some(handle))
}

type AuditorHandle = (Arc<DisruptionAuditor>, tokio::task::JoinHandle<()>);

/// Samples the disruption signals every 50 ms: outside a release the
/// deltas feed the EWMA baseline, and the release window opens the moment
/// the drain signal fires.
fn spawn_auditor(sources: &SharedSources) -> AuditorHandle {
    let auditor = Arc::new(DisruptionAuditor::new(AuditorConfig::default()));
    let task_auditor = Arc::clone(&auditor);
    let task_sources = Arc::clone(sources);
    let task = tokio::spawn(async move {
        loop {
            {
                let s = task_sources.lock();
                task_auditor.observe(s.stats.audit_totals());
                if s.drain.is_draining() && !task_auditor.in_release() {
                    task_auditor.begin_release();
                }
            }
            tokio::time::sleep(Duration::from_millis(50)).await;
        }
    });
    (auditor, task)
}

/// Takes a final reading, closes the release window, and prints
/// `AUDIT <json>` (a no-disruption verdict when nothing was flagged).
fn dump_audit(auditor: &Option<AuditorHandle>, stats: &ProxyStats) {
    if let Some((auditor, task)) = auditor {
        task.abort();
        auditor.observe(stats.audit_totals());
        let verdict = auditor.end_release();
        // PANIC-OK: the verdict is a derive(Serialize) struct of scalars;
        // serialization cannot fail.
        announce(&format!(
            "AUDIT {}",
            serde_json::to_string(&verdict).expect("verdict serializes")
        ));
    }
}

async fn run_broker(args: &Args) -> Result<(), String> {
    let listen = args.addr("--listen", "127.0.0.1:0")?;
    let handle = broker::spawn(listen).await.map_err(|e| e.to_string())?;
    ready(handle.addr);
    wait_forever().await;
    Ok(())
}

async fn run_app_server(args: &Args) -> Result<(), String> {
    let listen = args.addr("--listen", "127.0.0.1:0")?;
    let config = AppServerConfig {
        server_name: args.value("--name").unwrap_or("app-0").to_string(),
        read_delay_ms: args.u64_or("--read-delay", 0)?,
        drain_ms: args.u64_or("--drain-ms", 12_000)?,
        restart_behavior: if args.flag("--no-ppr") {
            RestartBehavior::Error500
        } else {
            RestartBehavior::PartialPostReplay
        },
    };
    let restart_after = args.u64_or("--restart-after", 0)?;
    let handle = appserver::spawn(listen, config)
        .await
        .map_err(|e| e.to_string())?;
    ready(handle.addr);
    if restart_after > 0 {
        tokio::time::sleep(Duration::from_millis(restart_after)).await;
        eprintln!("initiating restart (PPR window open)");
        handle.initiate_restart();
        // Grace period for 379s + drain, then exit like a real release.
        tokio::time::sleep(Duration::from_millis(2_000)).await;
        return Ok(());
    }
    wait_forever().await;
    Ok(())
}

async fn run_origin(args: &Args) -> Result<(), String> {
    let listen = args.addr("--listen", "127.0.0.1:0")?;
    let brokers = args.addrs("--broker")?;
    if brokers.is_empty() {
        return Err("origin requires at least one --broker".into());
    }
    let id = args.u64_or("--id", 1)? as u32;
    let drain_after = args.u64_or("--drain-after", 0)?;
    // PANIC-OK: "origin" is in the static role table this fn serves.
    let (value_flags, _) = role_flags("origin").expect("origin is a role");
    let plane = config_plane(args, &value_flags, 5_000)?;
    let boot = plane.store.current();
    let resilience = ResilienceConfig::from_zdr(&boot);
    if args.flag("--trunk") {
        let handle = zero_downtime_release::proxy::mqtt_relay_trunk::spawn_origin_trunk_with(
            listen, brokers, resilience,
        )
        .await
        .map_err(|e| e.to_string())?;
        let apply = handle.config_applier();
        plane
            .store
            .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
        apply_trace_sample(args, &handle.stats.telemetry)?;
        let _hup = spawn_sighup_reload(&plane);
        ready(handle.addr);
        if drain_after > 0 {
            tokio::time::sleep(Duration::from_millis(drain_after)).await;
            eprintln!("origin {id} draining (GOAWAY on trunks)");
            handle.drain();
            tokio::time::sleep(Duration::from_millis(5_000)).await;
            dump_stats(
                args,
                &plane.stamp(handle.stats.snapshot().merged(&handle.tracker().snapshot())),
            );
            return Ok(());
        }
        wait_forever().await;
        return Ok(());
    }
    let deadline = u32::try_from(boot.drain.drain_ms).unwrap_or(u32::MAX);
    let handle = spawn_origin_with(listen, id, brokers, deadline, resilience)
        .await
        .map_err(|e| e.to_string())?;
    let apply = handle.config_applier();
    plane
        .store
        .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
    apply_trace_sample(args, &handle.stats.telemetry)?;
    let _hup = spawn_sighup_reload(&plane);
    ready(handle.addr);
    if drain_after > 0 {
        tokio::time::sleep(Duration::from_millis(drain_after)).await;
        eprintln!("origin {id} draining (DCR solicitations sent)");
        handle.drain();
        tokio::time::sleep(Duration::from_millis(5_000)).await;
        dump_stats(
            args,
            &plane.stamp(handle.stats.snapshot().merged(&handle.tracker().snapshot())),
        );
        return Ok(());
    }
    wait_forever().await;
    Ok(())
}

async fn run_edge(args: &Args) -> Result<(), String> {
    let listen = args.addr("--listen", "127.0.0.1:0")?;
    let origins = args.addrs("--origin")?;
    if origins.is_empty() {
        return Err("edge requires at least one --origin".into());
    }
    // PANIC-OK: "edge" is in the static role table this fn serves.
    let (value_flags, _) = role_flags("edge").expect("edge is a role");
    let plane = config_plane(args, &value_flags, 2_000)?;
    let resilience = ResilienceConfig::from_zdr(&plane.store.current());
    if args.flag("--trunk") {
        let handle = zero_downtime_release::proxy::mqtt_relay_trunk::spawn_edge_trunk_with(
            listen, origins, resilience,
        )
        .await
        .map_err(|e| e.to_string())?;
        let apply = handle.config_applier();
        plane
            .store
            .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
        apply_trace_sample(args, &handle.stats.telemetry)?;
        let _hup = spawn_sighup_reload(&plane);
        ready(handle.addr);
        wait_forever().await;
        dump_stats(
            args,
            &plane.stamp(
                handle
                    .stats
                    .snapshot()
                    .merged(&handle.dcr_stats.snapshot())
                    .merged(&handle.tracker().snapshot()),
            ),
        );
        return Ok(());
    }
    let handle = spawn_edge_with(listen, origins, resilience)
        .await
        .map_err(|e| e.to_string())?;
    let apply = handle.config_applier();
    plane
        .store
        .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
    apply_trace_sample(args, &handle.stats.telemetry)?;
    let _hup = spawn_sighup_reload(&plane);
    ready(handle.addr);
    wait_forever().await;
    dump_stats(
        args,
        &plane.stamp(
            handle
                .stats
                .snapshot()
                .merged(&handle.dcr_stats.snapshot())
                .merged(&handle.tracker().snapshot()),
        ),
    );
    Ok(())
}

async fn run_quic(args: &Args) -> Result<(), String> {
    use zero_downtime_release::proxy::quic_service::{QuicInstance, QuicInstanceConfig};
    let takeover_path: PathBuf = args
        .value("--takeover-path")
        .ok_or_else(|| "quic requires --takeover-path".to_string())?
        .into();
    // PANIC-OK: "quic" is in the static role table this fn serves.
    let (value_flags, _) = role_flags("quic").expect("quic is a role");
    let plane = config_plane(args, &value_flags, 2_000)?;
    let boot = plane.store.current();
    let resilience = ResilienceConfig::from_zdr(&boot);
    let config = QuicInstanceConfig {
        takeover_path,
        sockets: args.u64_or("--sockets", 2)? as usize,
        drain_ms: boot.drain.drain_ms,
        shed: resilience.shed,
        admission: resilience.admission,
        protection: resilience.protection,
    };
    let instance = if args.flag("--takeover") {
        takeover_with_retry(|| QuicInstance::takeover_from(config.clone())).await?
    } else {
        let listen = args.addr("--listen", "127.0.0.1:0")?;
        QuicInstance::bind_fresh(listen, config)
            .await
            .map_err(|e| e.to_string())?
    };
    let apply = instance.config_applier();
    plane
        .store
        .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
    apply_trace_sample(args, &instance.stats.telemetry)?;
    let _hup = spawn_sighup_reload(&plane);
    eprintln!(
        "quic generation {} serving on {}",
        instance.generation, instance.vip
    );
    ready(instance.vip);
    let drained = instance
        .serve_one_takeover()
        .await
        .map_err(|e| e.to_string())?;
    eprintln!(
        "quic generation {} drained ({} datagrams served while draining)",
        drained.generation, drained.served_during_drain
    );
    dump_stats(args, &plane.stamp(drained.snapshot.clone()));
    println!("DRAINED");
    Ok(())
}

async fn run_l4(args: &Args) -> Result<(), String> {
    use zero_downtime_release::l4d::{self, L4Config};
    let listen = args.addr("--listen", "127.0.0.1:0")?;
    let backends = args.addrs("--backend")?;
    if backends.is_empty() {
        return Err("l4 requires at least one --backend".into());
    }
    let config = L4Config {
        backends,
        probe_interval: Duration::from_millis(args.u64_or("--probe-interval-ms", 200)?),
        ..Default::default()
    };
    let handle = l4d::spawn(listen, config)
        .await
        .map_err(|e| e.to_string())?;
    ready(handle.addr);
    wait_forever().await;
    Ok(())
}

async fn run_proxy(args: &Args) -> Result<(), String> {
    let takeover_path: PathBuf = args
        .value("--takeover-path")
        .ok_or_else(|| "proxy requires --takeover-path".to_string())?
        .into();
    // PANIC-OK: "proxy" is in the static role table this fn serves.
    let (value_flags, _) = role_flags("proxy").expect("proxy is a role");
    let plane = config_plane(args, &value_flags, 2_000)?;
    let boot = plane.store.current();
    let config = ProxyInstanceConfig {
        reverse: ReverseProxyConfig {
            upstreams: boot.routing.upstreams.clone(),
            upstream_timeout: Duration::from_secs(30),
            resilience: ResilienceConfig::from_zdr(&boot),
            ..Default::default()
        },
        takeover_path,
        drain_ms: boot.drain.drain_ms,
    };

    let supervised = args.flag("--supervised");
    if supervised && args.flag("--takeover") {
        return run_proxy_watched_successor(args, config, plane).await;
    }

    let instance = if args.flag("--takeover") {
        // New process: receive the sockets from the running instance. The
        // old process may still be binding its takeover server (we may
        // have been exec'd seconds early) — retry briefly.
        takeover_with_retry(|| ProxyInstance::takeover_from(config.clone())).await?
    } else {
        let listen = args.addr("--listen", "127.0.0.1:0")?;
        ProxyInstance::bind_fresh(listen, config)
            .await
            .map_err(|e| e.to_string())?
    };
    eprintln!(
        "proxy generation {} serving on {}",
        instance.generation, instance.addr
    );
    apply_trace_sample(args, &instance.stats().telemetry)?;
    let sources = Arc::new(parking_lot::Mutex::new(sources_of(&instance)));
    let _admin = maybe_spawn_admin(args, &sources, &plane).await?;
    let _ticker = spawn_protection_ticker(&sources);
    let _hup = spawn_sighup_reload(&plane);
    let auditor = args.flag("--audit").then(|| spawn_auditor(&sources));

    if supervised {
        // The supervised loop wires its own rollback-surviving subscriber.
        ready(instance.addr);
        return run_proxy_supervised(args, instance, &sources, &auditor, &plane).await;
    }

    let apply = instance.config_applier();
    plane
        .store
        .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
    ready(instance.addr);

    // Serve until a successor takes over, then drain and exit — the real
    // release lifecycle: each process serves exactly one generation.
    let drained = instance
        .serve_one_takeover()
        .await
        .map_err(|e| e.to_string())?;
    let drain_ms = plane.store.current().drain.drain_ms;
    eprintln!(
        "generation {} handed over; draining {drain_ms} ms before exit",
        drained.generation,
    );
    tokio::time::sleep(Duration::from_millis(drain_ms)).await;
    dump_stats(args, &plane.stamp(drained_snapshot(&drained)));
    dump_audit(&auditor, &drained.reverse.stats);
    announce("DRAINED");
    Ok(())
}

/// Merged counters + connection-tracking view of a drained proxy.
fn drained_snapshot(drained: &zero_downtime_release::proxy::takeover::Drained) -> StatsSnapshot {
    drained
        .reverse
        .stats
        .snapshot()
        .merged(&drained.reverse.tracker().snapshot())
}

/// Old-process side of a supervised release: serve takeovers, watch each
/// successor, and on rollback/abort go right back to serving — the release
/// failed, the users never noticed.
async fn run_proxy_supervised(
    args: &Args,
    instance: ProxyInstance,
    sources: &SharedSources,
    auditor: &Option<AuditorHandle>,
    plane: &ConfigPlane,
) -> Result<(), String> {
    use zero_downtime_release::core::supervisor::BackoffSchedule;
    use zero_downtime_release::net::fault::NoFaults;
    use zero_downtime_release::proxy::takeover::{SupervisedOutcome, SupervisorOptions};

    let opts = SupervisorOptions {
        watch: Duration::from_millis(args.u64_or("--watch-ms", 10_000)?),
        backoff: BackoffSchedule {
            max_attempts: args.u64_or("--max-attempts", 5)? as u32,
            ..Default::default()
        },
        ..Default::default()
    };

    // A rollback rebuilds the instance with fresh gates, so the config
    // subscriber routes through a swappable slot instead of capturing one
    // instance's applier forever.
    type Applier = Arc<dyn Fn(&ZdrConfig, u64) + Send + Sync>;
    let slot: Arc<parking_lot::Mutex<Applier>> =
        Arc::new(parking_lot::Mutex::new(instance.config_applier()));
    {
        let slot = Arc::clone(&slot);
        plane.store.subscribe(Box::new(move |cfg, epoch| {
            let apply = Arc::clone(&*slot.lock());
            apply(cfg.as_ref(), epoch);
        }));
    }

    let mut instance = instance;
    loop {
        let outcome = instance
            .serve_one_takeover_supervised(opts.clone(), Arc::new(NoFaults))
            .await
            .map_err(|e| e.to_string())?;
        match outcome {
            SupervisedOutcome::Completed(drained) => {
                let drain_ms = plane.store.current().drain.drain_ms;
                eprintln!(
                    "generation {} handed over; draining {drain_ms} ms before exit",
                    drained.generation
                );
                tokio::time::sleep(Duration::from_millis(drain_ms)).await;
                dump_stats(args, &plane.stamp(drained_snapshot(&drained)));
                dump_audit(auditor, &drained.reverse.stats);
                announce("DRAINED");
                return Ok(());
            }
            SupervisedOutcome::RolledBack {
                instance: reclaimed,
                reason,
            } => {
                eprintln!("release rolled back: {reason}");
                // One AUDIT line per release attempt: the window the
                // rollback just closed, judged before the sources swap to
                // the rebuilt instance's fresh counters.
                if let Some((a, _)) = auditor {
                    a.observe(sources.lock().stats.audit_totals());
                    // PANIC-OK: the verdict is a derive(Serialize) struct
                    // of scalars; serialization cannot fail.
                    announce(&format!(
                        "AUDIT {}",
                        serde_json::to_string(&a.end_release()).expect("verdict serializes")
                    ));
                }
                announce(&format!("ROLLBACK {reason}"));
                instance = reclaimed;
                // The rebuilt instance carries a fresh tracer; re-apply the
                // boot-time sampling rate so traces survive a rollback.
                apply_trace_sample(args, &instance.stats().telemetry)?;
                *sources.lock() = sources_of(&instance);
                // Catch the rebuilt instance up with any reload that
                // landed mid-release, then aim future publishes at it.
                let (epoch, cfg) = plane.store.current_with_epoch();
                if epoch > BOOT_EPOCH {
                    instance.apply_config(&cfg, epoch);
                }
                *slot.lock() = instance.config_applier();
            }
            SupervisedOutcome::AbortedKeepOld {
                instance: kept,
                reason,
            } => {
                eprintln!("release aborted: {reason}");
                announce(&format!("ABORTED {reason}"));
                instance = kept;
            }
        }
    }
}

/// New-process side of a supervised release: take the sockets over, serve,
/// report health after `--health-report-ms`, and obey the predecessor's
/// verdict (released → normal lifecycle; reclaimed → hand the sockets back
/// and exit).
async fn run_proxy_watched_successor(
    args: &Args,
    config: ProxyInstanceConfig,
    plane: ConfigPlane,
) -> Result<(), String> {
    use zero_downtime_release::net::takeover::ReclaimVerdict;

    let (instance, release) =
        takeover_with_retry(|| ProxyInstance::takeover_from_watched(config.clone())).await?;
    eprintln!(
        "proxy generation {} serving on {} (supervised)",
        instance.generation, instance.addr
    );
    apply_trace_sample(args, &instance.stats().telemetry)?;
    let sources = Arc::new(parking_lot::Mutex::new(sources_of(&instance)));
    let _admin = maybe_spawn_admin(args, &sources, &plane).await?;
    let _ticker = spawn_protection_ticker(&sources);
    let _hup = spawn_sighup_reload(&plane);
    let apply = instance.config_applier();
    plane
        .store
        .subscribe(Box::new(move |cfg, epoch| apply(cfg.as_ref(), epoch)));
    let auditor = args.flag("--audit").then(|| spawn_auditor(&sources));
    ready(instance.addr);

    let report_ms = args.u64_or("--health-report-ms", 200)?;
    let report_ok = !args.flag("--report-unhealthy");
    let (verdict, release) = tokio::task::spawn_blocking(move || {
        std::thread::sleep(Duration::from_millis(report_ms));
        let mut release = release;
        release
            .report_health(report_ok)
            .map_err(|e| e.to_string())?;
        let verdict = release
            .await_verdict(Duration::from_secs(600))
            .map_err(|e| e.to_string())?;
        Ok::<_, String>((verdict, release))
    })
    .await
    .map_err(|e| format!("verdict task panicked: {e}"))??;

    match verdict {
        ReclaimVerdict::Released => {
            announce("RELEASED");
            let drained = instance
                .serve_one_takeover()
                .await
                .map_err(|e| e.to_string())?;
            let drain_ms = plane.store.current().drain.drain_ms;
            eprintln!(
                "generation {} handed over; draining {drain_ms} ms before exit",
                drained.generation
            );
            tokio::time::sleep(Duration::from_millis(drain_ms)).await;
            dump_stats(args, &plane.stamp(drained_snapshot(&drained)));
            dump_audit(&auditor, &drained.reverse.stats);
            announce("DRAINED");
        }
        ReclaimVerdict::Reclaimed => {
            let drained = instance
                .serve_reclaim(release)
                .await
                .map_err(|e| e.to_string())?;
            eprintln!("generation {} handed the sockets back", drained.generation);
            dump_audit(&auditor, &drained.reverse.stats);
            announce("RECLAIMED");
            tokio::time::sleep(Duration::from_millis(500)).await;
        }
    }
    Ok(())
}

//! `zdr doctor` — preflight a host before a release.
//!
//! The paper's framework treats a release as routine precisely because the
//! boring failure modes are caught *before* any socket moves: a takeover
//! path whose directory the process cannot write, an upstream that is not
//! listening, a config file that will not validate, a config file that has
//! drifted from what the live proxy is actually running. Each check yields
//! one verdict line:
//!
//! ```text
//! DOCTOR ok fd-limit: soft limit 524288
//! DOCTOR critical upstream 127.0.0.1:9999: connect: Connection refused
//! DOCTOR VERDICT critical (1 critical, 0 warn, 3 ok)
//! ```
//!
//! `zdr orchestrate` runs the same checks over every node of a train and
//! refuses to start on any critical finding unless `--force` is given —
//! the train's journal should never have to record a halt the host could
//! have predicted.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use zero_downtime_release::core::config::ZdrConfig;

use crate::{announce, check_config_file, Args};

/// How bad one finding is. `Ord` so the worst of a batch is `max()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Severity {
    /// The check passed.
    Ok,
    /// Suspicious but releasable (stale config, unknown limits).
    Warn,
    /// Releasing through this will fail or disrupt; refuse unless forced.
    Critical,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// One check's verdict.
#[derive(Debug)]
pub(crate) struct Finding {
    pub severity: Severity,
    /// Which check (plus its subject, e.g. `upstream 127.0.0.1:8080`).
    pub check: String,
    pub detail: String,
}

impl Finding {
    fn new(severity: Severity, check: impl Into<String>, detail: impl Into<String>) -> Self {
        Finding {
            severity,
            check: check.into(),
            detail: detail.into(),
        }
    }
}

/// How long a reachability or scrape probe may take. Short on purpose:
/// preflight runs serially over every node of a train.
const PROBE_TIMEOUT: Duration = Duration::from_millis(1_000);

/// The soft fd limit below which a proxy that holds every draining
/// connection *and* the successor's fresh accepts is at risk.
const FD_SOFT_FLOOR: u64 = 1_024;

/// Parses the soft "Max open files" limit from `/proc/self/limits`
/// (fields: `Max open files  <soft>  <hard>  files`). `None` where the
/// procfs line is missing or unparsable — non-Linux hosts degrade to a
/// warn, not a crash.
fn fd_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// File-descriptor headroom: a takeover momentarily doubles the fleet's
/// sockets in one process tree (old drains, new accepts).
pub(crate) fn check_fd_limit() -> Finding {
    match fd_soft_limit() {
        Some(soft) if soft < FD_SOFT_FLOOR => Finding::new(
            Severity::Warn,
            "fd-limit",
            format!("soft limit {soft} below {FD_SOFT_FLOOR}; a drain may exhaust fds"),
        ),
        Some(soft) => Finding::new(Severity::Ok, "fd-limit", format!("soft limit {soft}")),
        None => Finding::new(
            Severity::Warn,
            "fd-limit",
            "could not read /proc/self/limits; limit unknown",
        ),
    }
}

/// Reads one whole-file procfs integer (`nf_conntrack_count` and friends).
fn read_proc_u64(path: &str) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Conntrack table headroom: a drain briefly *doubles* the host's tracked
/// flows — the predecessor holds every draining connection while the
/// successor accepts and dials fresh ones — so a table whose doubled
/// count would not fit is a release risk (overflow silently drops new
/// flows). A host without the netfilter procfs has no table to overflow
/// and passes.
pub(crate) fn check_conntrack() -> Finding {
    let check = "conntrack";
    let count = read_proc_u64("/proc/sys/net/netfilter/nf_conntrack_count");
    let max = read_proc_u64("/proc/sys/net/netfilter/nf_conntrack_max");
    match (count, max) {
        (Some(count), Some(max)) if max > 0 => {
            let doubled = count.saturating_mul(2);
            if doubled >= max {
                Finding::new(
                    Severity::Critical,
                    check,
                    format!(
                        "{count} of {max} entries in use; a drain's doubling would \
                         overflow the table and drop new flows"
                    ),
                )
            } else if doubled * 10 >= max * 8 {
                Finding::new(
                    Severity::Warn,
                    check,
                    format!(
                        "{count} of {max} entries in use; a drain's doubling leaves \
                         under 20% headroom"
                    ),
                )
            } else {
                Finding::new(Severity::Ok, check, format!("{count} of {max} entries in use"))
            }
        }
        _ => Finding::new(
            Severity::Ok,
            check,
            "netfilter conntrack not present; no table to overflow",
        ),
    }
}

/// Parses `/proc/sys/net/ipv4/ip_local_port_range` (`low<tab>high`).
fn parse_port_range(s: &str) -> Option<(u64, u64)> {
    let mut it = s.split_whitespace();
    let low = it.next()?.parse().ok()?;
    let high = it.next()?.parse().ok()?;
    (low <= high).then_some((low, high))
}

/// Local ports inside `[low, high]` held by sockets in one `/proc/net/tcp`
/// table (hex `local_address` column). TIME_WAIT rows count too — those
/// ports are just as unusable for fresh connects.
fn count_ports_in_range(table: &str, low: u64, high: u64) -> u64 {
    table
        .lines()
        .skip(1)
        .filter_map(|line| {
            let local = line.split_whitespace().nth(1)?;
            let (_, port_hex) = local.rsplit_once(':')?;
            u64::from_str_radix(port_hex, 16).ok()
        })
        .filter(|port| (low..=high).contains(port))
        .count() as u64
}

/// Ephemeral-port headroom: the successor's fresh upstream connects draw
/// from the same `ip_local_port_range` the draining predecessor is still
/// sitting on, so the drain's doubling of socket count must fit the
/// range. Warn-degrades where the procfs is unreadable (non-Linux).
pub(crate) fn check_ephemeral_ports() -> Finding {
    let check = "ephemeral-ports";
    let range = match std::fs::read_to_string("/proc/sys/net/ipv4/ip_local_port_range") {
        Ok(s) => s,
        Err(_) => {
            return Finding::new(
                Severity::Warn,
                check,
                "could not read ip_local_port_range; headroom unknown",
            )
        }
    };
    let Some((low, high)) = parse_port_range(&range) else {
        return Finding::new(
            Severity::Warn,
            check,
            format!("unparsable ip_local_port_range {range:?}"),
        );
    };
    let span = high - low + 1;
    let mut used = 0;
    let mut readable = false;
    for table in ["/proc/net/tcp", "/proc/net/tcp6"] {
        if let Ok(src) = std::fs::read_to_string(table) {
            readable = true;
            used += count_ports_in_range(&src, low, high);
        }
    }
    if !readable {
        return Finding::new(
            Severity::Warn,
            check,
            "could not read /proc/net/tcp; port usage unknown",
        );
    }
    let doubled = used.saturating_mul(2);
    if doubled >= span {
        Finding::new(
            Severity::Critical,
            check,
            format!(
                "{used} of {span} ephemeral ports ({low}-{high}) in use; a drain's \
                 doubling would exhaust the range"
            ),
        )
    } else if doubled * 10 >= span * 8 {
        Finding::new(
            Severity::Warn,
            check,
            format!(
                "{used} of {span} ephemeral ports ({low}-{high}) in use; a drain's \
                 doubling leaves under 20% headroom"
            ),
        )
    } else {
        Finding::new(
            Severity::Ok,
            check,
            format!("{used} of {span} ephemeral ports ({low}-{high}) in use"),
        )
    }
}

/// The takeover socket's directory must exist and be writable, or the
/// successor cannot even offer the handshake.
pub(crate) fn check_takeover_path(path: &Path) -> Finding {
    let check = format!("takeover-path {}", path.display());
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    if !dir.is_dir() {
        return Finding::new(
            Severity::Critical,
            check,
            format!("directory {} does not exist", dir.display()),
        );
    }
    // An actual write probe, not a mode check: ACLs, read-only mounts, and
    // containers all lie to stat-based heuristics.
    let probe = dir.join(format!(".zdr-doctor-{}", std::process::id()));
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            Finding::new(Severity::Ok, check, format!("{} writable", dir.display()))
        }
        Err(e) => Finding::new(
            Severity::Critical,
            check,
            format!("{} not writable: {e}", dir.display()),
        ),
    }
}

/// TCP reachability of one upstream (or VIP). The probe only completes the
/// handshake — an accept-then-close upstream passes here and is caught by
/// the canary gate instead; that split is deliberate (doctor is cheap and
/// traffic-free, the gate judges real traffic).
pub(crate) fn check_reachable(what: &str, addr: SocketAddr, severity_if_down: Severity) -> Finding {
    let check = format!("{what} {addr}");
    match TcpStream::connect_timeout(&addr, PROBE_TIMEOUT) {
        Ok(_) => Finding::new(Severity::Ok, check, "reachable"),
        Err(e) => Finding::new(severity_if_down, check, format!("connect: {e}")),
    }
}

/// Parses and fully validates a config file; on success also probes every
/// upstream it routes to.
pub(crate) fn check_config(path: &Path, findings: &mut Vec<Finding>) -> Option<ZdrConfig> {
    let check = format!("config {}", path.display());
    match check_config_file(path) {
        Ok(cfg) => {
            findings.push(Finding::new(
                Severity::Ok,
                check,
                format!("valid ({} upstreams)", cfg.routing.upstreams.len()),
            ));
            for &u in &cfg.routing.upstreams {
                findings.push(check_reachable("upstream", u, Severity::Critical));
            }
            Some(cfg)
        }
        Err(errs) => {
            findings.push(Finding::new(Severity::Critical, check, errs.join("; ")));
            None
        }
    }
}

/// One blocking HTTP/1.0 GET, small enough to not need the async stack:
/// doctor (and the orchestrator's canary probes) run before any runtime
/// exists.
pub(crate) fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream =
        TcpStream::connect_timeout(&addr, PROBE_TIMEOUT).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(PROBE_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(PROBE_TIMEOUT)))
        .map_err(|e| format!("socket: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: zdr-doctor\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response".to_string())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("status {status:?}"));
    }
    Ok(body.to_string())
}

/// Compares the file the operator is about to release against what the
/// live proxy (scraped via its admin endpoint) is actually running. Drift
/// is a warn, not a critical: it usually means "a reload is pending", but
/// it is exactly how half-applied fleets happen.
pub(crate) fn check_staleness(admin: SocketAddr, file_cfg: &ZdrConfig, path: &Path) -> Finding {
    let check = format!("config-staleness {admin}");
    let body = match http_get(admin, "/stats") {
        Ok(b) => b,
        Err(e) => return Finding::new(Severity::Warn, check, format!("/stats scrape: {e}")),
    };
    let stats: serde_json::Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => return Finding::new(Severity::Warn, check, format!("/stats parse: {e}")),
    };
    let epoch = stats
        .get("config_epoch")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let live: BTreeMap<String, String> = match stats.get("config") {
        Some(serde_json::Value::Object(map)) => map
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
            .collect(),
        _ => return Finding::new(Severity::Warn, check, "/stats carries no config map"),
    };
    let file_map = file_cfg.render_map();
    if live == file_map {
        return Finding::new(
            Severity::Ok,
            check,
            format!("live config (epoch {epoch}) matches {}", path.display()),
        );
    }
    let drifted: Vec<&str> = file_map
        .iter()
        .filter(|(k, v)| live.get(*k) != Some(v))
        .map(|(k, _)| k.as_str())
        .chain(
            live.keys()
                .filter(|k| !file_map.contains_key(*k))
                .map(String::as_str),
        )
        .collect();
    Finding::new(
        Severity::Warn,
        check,
        format!(
            "live config (epoch {epoch}) differs from {} in: {}",
            path.display(),
            drifted.join(", ")
        ),
    )
}

/// Prints every finding as a `DOCTOR` line plus the `VERDICT` summary, and
/// returns the worst severity.
pub(crate) fn emit(findings: &[Finding]) -> Severity {
    let mut worst = Severity::Ok;
    let (mut criticals, mut warns, mut oks) = (0u32, 0u32, 0u32);
    for f in findings {
        announce(&format!(
            "DOCTOR {} {}: {}",
            f.severity.label(),
            f.check,
            f.detail
        ));
        worst = worst.max(f.severity);
        match f.severity {
            Severity::Ok => oks += 1,
            Severity::Warn => warns += 1,
            Severity::Critical => criticals += 1,
        }
    }
    announce(&format!(
        "DOCTOR VERDICT {} ({criticals} critical, {warns} warn, {oks} ok)",
        worst.label()
    ));
    worst
}

/// `zdr doctor` entry point.
pub(crate) fn run(args: &Args) -> ExitCode {
    let value_flags = ["--config", "--takeover-path", "--upstream", "--admin"];
    if let Err(msg) = args.validate(&value_flags, &[]) {
        eprintln!("error: {msg}\n\nsee `zdr --help` for doctor options");
        return ExitCode::FAILURE;
    }

    let mut findings = vec![check_fd_limit(), check_conntrack(), check_ephemeral_ports()];
    for path in args.values("--takeover-path") {
        findings.push(check_takeover_path(Path::new(path)));
    }
    for spec in args.values("--upstream") {
        match spec.parse::<SocketAddr>() {
            Ok(addr) => findings.push(check_reachable("upstream", addr, Severity::Critical)),
            Err(e) => findings.push(Finding::new(
                Severity::Critical,
                format!("upstream {spec}"),
                format!("bad address: {e}"),
            )),
        }
    }
    let configs = args.values("--config");
    let mut parsed = Vec::new();
    for path in &configs {
        let path = Path::new(path);
        if let Some(cfg) = check_config(path, &mut findings) {
            parsed.push((path.to_path_buf(), cfg));
        }
    }
    for spec in args.values("--admin") {
        match (spec.parse::<SocketAddr>(), parsed.as_slice()) {
            (Ok(admin), [(path, cfg)]) => findings.push(check_staleness(admin, cfg, path)),
            (Ok(_), _) => findings.push(Finding::new(
                Severity::Warn,
                format!("config-staleness {spec}"),
                format!(
                    "needs exactly one valid --config to compare against (got {})",
                    parsed.len()
                ),
            )),
            (Err(e), _) => findings.push(Finding::new(
                Severity::Critical,
                format!("config-staleness {spec}"),
                format!("bad address: {e}"),
            )),
        }
    }

    match emit(&findings) {
        Severity::Critical => ExitCode::FAILURE,
        Severity::Ok | Severity::Warn => ExitCode::SUCCESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_range_parses_and_rejects_nonsense() {
        assert_eq!(parse_port_range("32768\t60999\n"), Some((32768, 60999)));
        assert_eq!(parse_port_range("1024 1024"), Some((1024, 1024)));
        assert_eq!(parse_port_range("60999 32768"), None, "inverted range");
        assert_eq!(parse_port_range("garbage"), None);
        assert_eq!(parse_port_range(""), None);
    }

    #[test]
    fn port_counting_reads_the_hex_local_port_column() {
        // Two sockets in the ephemeral range (0x8000 = 32768 and
        // 0x8E47 = 36423), one below it (0x50 = 80); the header and
        // malformed rows are skipped.
        let table = "  sl  local_address rem_address   st\n\
             0: 0100007F:8000 00000000:0000 0A\n\
             1: 0100007F:0050 00000000:0000 0A\n\
             2: 0100007F:8E47 00000000:0000 06\n\
             3: not-a-row\n";
        assert_eq!(count_ports_in_range(table, 32768, 60999), 2);
        assert_eq!(count_ports_in_range(table, 1, 100), 1);
        assert_eq!(count_ports_in_range("", 1, 100), 0);
    }

    #[test]
    fn headroom_checks_degrade_not_crash() {
        // Whatever this host's procfs looks like, the checks must yield a
        // finding (the severities depend on the host, the shape must not).
        let c = check_conntrack();
        assert_eq!(c.check, "conntrack");
        let e = check_ephemeral_ports();
        assert_eq!(e.check, "ephemeral-ports");
        assert!(!e.detail.is_empty());
    }
}

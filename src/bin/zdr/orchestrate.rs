//! `zdr orchestrate` — a canary-gated release train over real processes.
//!
//! The simulator's `release_train` experiment drives thousands of modeled
//! proxies; this subcommand drives the same [`ReleaseTrain`] state machine
//! over *actual* `zdr proxy` processes, one per `--node`. Each node is a
//! running predecessor serving a VIP with a takeover socket; releasing a
//! cluster is the paper's check → takeover → verify choreography:
//!
//! 1. **check** — the new config must validate (`zdr check` semantics),
//! 2. **release** — spawn `zdr proxy --takeover --config NEWCFG` against
//!    the node's takeover socket and wait for its `READY`,
//! 3. **verify** — probe the VIP for `--windows` clean canary windows; a
//!    disruption rate above the gate's threshold halts the *whole train*
//!    and rolls the batch back by spawning a successor on the rollback
//!    config (reverse takeover: same mechanism, previous generation's
//!    tunables).
//!
//! Every decision is journaled (write-ahead, fsynced) to `--journal`
//! before the action it describes runs, so a controller killed mid-batch
//! resumes exactly once: the next invocation replays the journal, rolls
//! back whatever the crash left in flight, and continues the train. A
//! journal from a *different* train (clusters, batching, or gate policy
//! changed) is refused as stale unless `--fresh` discards it.
//!
//! Controller faults are injected through the same seeded
//! [`ScriptedFaults`] scripting the takeover handshake uses
//! (`ZDR_FAULT_SEED` selects the seed): `controller-crash@N` kills the
//! controller at the Nth batch boundary, `drop-verdict@N` loses the Nth
//! canary observation, `replay-crash@N`/`replay-truncate@N` sabotage the
//! Nth journal replay, and `mqtt-canary-fail@N`/`scrape-drop@N` corrupt
//! or lose the Nth per-protocol `/stats` scrape.
//!
//! The verify step is more than HTTP probes: every successor is spawned
//! with `--fleet-admin`, its `ADMIN <addr>` endpoint is captured, and each
//! canary window folds the successor's own MQTT/QUIC counters (scraped as
//! consecutive `/stats` deltas) into the gate beside the HTTP probe
//! sample — a release that silently drops every MQTT tunnel halts the
//! train even while HTTP stays green. At each batch promotion the scraped
//! [`StatsSnapshot`]s are merged into a [`FleetReport`] — cross-node
//! latency quantiles from the already-mergeable histograms plus a
//! controller-side [`DisruptionAuditor`] verdict per node — journaled to
//! `<journal>.fleet` and announced as `FLEET_REPORT <json>`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

use zero_downtime_release::core::canary::{CanaryPolicy, WindowSample};
use zero_downtime_release::core::clock::Clock;
use zero_downtime_release::core::fleet::{FleetReport, NodeReport};
use zero_downtime_release::core::orchestrator::{
    JournalRecord, ReleaseTrain, ResumeError, TrainAction, TrainConfig, TrainPhase,
};
use zero_downtime_release::core::telemetry::{AuditTotals, AuditorConfig, DisruptionAuditor};
use zero_downtime_release::core::ClusterId;
use zero_downtime_release::net::fault::{
    FaultAction, FaultInjector, FaultPoint, FaultRule, ScriptedFaults,
};
use zero_downtime_release::proxy::stats::StatsSnapshot;

use crate::doctor::{self, Severity};
use crate::{announce, check_config_file, Args};

/// Exit codes beyond success/failure, so scripts and the e2e tests can
/// tell a refused train from a halted one from an injected crash.
const EXIT_REFUSED: u8 = 2;
const EXIT_HALTED: u8 = 3;
const EXIT_ROLLBACK_FAILED: u8 = 4;
const EXIT_CRASHED: u8 = 7;

/// One cluster of the train: the VIP its proxy serves, the takeover
/// socket releases move through, and the two configs (release / revert).
struct Node {
    vip: SocketAddr,
    sock: PathBuf,
    new_cfg: PathBuf,
    rollback_cfg: PathBuf,
}

impl Node {
    /// Parses `VIP=SOCK=NEWCFG=ROLLBACKCFG` (paths must not contain `=`).
    fn parse(spec: &str) -> Result<Node, String> {
        let parts: Vec<&str> = spec.split('=').collect();
        let [vip, sock, new_cfg, rollback_cfg] = parts.as_slice() else {
            return Err(format!(
                "bad --node {spec:?}: expected VIP=SOCK=NEWCFG=ROLLBACKCFG"
            ));
        };
        Ok(Node {
            vip: vip
                .parse()
                .map_err(|e| format!("bad --node VIP {vip:?}: {e}"))?,
            sock: PathBuf::from(sock),
            new_cfg: PathBuf::from(new_cfg),
            rollback_cfg: PathBuf::from(rollback_cfg),
        })
    }
}

/// Maps one `--fault NAME@NTH` spec onto the injector's hook points.
fn parse_fault(spec: &str) -> Result<FaultRule, String> {
    let (name, nth) = match spec.split_once('@') {
        Some((name, n)) => (
            name,
            n.parse::<u64>()
                .map_err(|e| format!("bad --fault {spec:?}: {e}"))?,
        ),
        None => (spec, 0),
    };
    let (point, action) = match name {
        "controller-crash" => (FaultPoint::BatchBoundary, FaultAction::Die),
        "drop-verdict" => (FaultPoint::PromotionVerdict, FaultAction::Drop),
        "replay-crash" => (FaultPoint::JournalReplay, FaultAction::Die),
        "replay-truncate" => (FaultPoint::JournalReplay, FaultAction::Truncate),
        "mqtt-canary-fail" => (FaultPoint::StatsScrape, FaultAction::Die),
        "scrape-drop" => (FaultPoint::StatsScrape, FaultAction::Drop),
        other => {
            return Err(format!(
                "bad --fault {other:?}: expected controller-crash, drop-verdict, \
                 replay-crash, replay-truncate, mqtt-canary-fail, or scrape-drop"
            ))
        }
    };
    Ok(FaultRule { point, nth, action })
}

/// The write-ahead journal: one JSON record per line, fsynced per drain.
/// Records are also announced as `TRAIN <json>` lines so tests and
/// operators watch the train's decisions live.
struct Journal {
    file: std::fs::File,
}

impl Journal {
    fn append_to(path: &Path) -> Result<Journal, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open journal {}: {e}", path.display()))?;
        Ok(Journal { file })
    }

    /// Persists drained records before their actions execute. Returns
    /// whether a `BatchPromoted` landed — the batch-boundary hook.
    fn persist(&mut self, records: &[JournalRecord]) -> Result<bool, String> {
        let mut promoted = false;
        for rec in records {
            // PANIC-OK: journal records are derive(Serialize) enums of
            // scalars and strings; serialization cannot fail.
            let line = serde_json::to_string(rec).expect("journal record serializes");
            writeln!(self.file, "{line}").map_err(|e| format!("journal write: {e}"))?;
            announce(&format!("TRAIN {line}"));
            promoted |= matches!(rec, JournalRecord::BatchPromoted { .. });
        }
        self.file
            .sync_data()
            .map_err(|e| format!("journal fsync: {e}"))?;
        Ok(promoted)
    }
}

/// Reads an existing journal; empty or missing files resolve to no
/// records. A line that does not parse is corruption, not staleness —
/// refuse loudly rather than resume from a half-truth.
fn load_journal(path: &Path) -> Result<Vec<JournalRecord>, String> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read journal {}: {e}", path.display())),
    };
    src.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .map_err(|e| format!("corrupt journal {}: {e} in {l:?}", path.display()))
        })
        .collect()
}

/// One canary window: `probes` HTTP GETs against the VIP, evenly spaced
/// across `window_ms`. Anything but a 2xx — connect refusal, reset, 5xx —
/// counts as a disruption, the same signal the simulator's gates judge.
fn probe_window(vip: SocketAddr, probes: u64, window_ms: u64) -> WindowSample {
    let gap = Duration::from_millis(window_ms / probes.max(1));
    let mut disruptions = 0;
    for _ in 0..probes {
        if doctor::http_get(vip, "/zdr-train-probe").is_err() {
            disruptions += 1;
        }
        std::thread::sleep(gap);
    }
    WindowSample {
        requests: probes,
        disruptions,
    }
}

/// Spawns a successor proxy (`zdr proxy --takeover --config <cfg>
/// --fleet-admin`) for `node` and blocks until it announces `READY` (its
/// takeover finished and it is serving the VIP), capturing the `ADMIN
/// <addr>` line printed on the way so the controller can scrape the
/// successor's `/stats` per canary window. The successor's stdout is
/// drained by a detached thread afterwards so its later announcements
/// never block it.
fn spawn_successor(node: &Node, cfg: &Path) -> Result<(Child, Option<SocketAddr>), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .arg("proxy")
        .arg("--takeover")
        .arg("--config")
        .arg(cfg)
        .arg("--takeover-path")
        .arg(&node.sock)
        .arg("--fleet-admin")
        .stdout(Stdio::piped())
        // The fleet outlives the controller; inheriting its stderr would
        // keep any pipe capturing the controller's output open forever.
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn successor for {}: {e}", node.vip))?;
    // PANIC-OK: the Command above set Stdio::piped() for stdout, so the
    // handle is always present on a spawned child.
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let mut admin: Option<SocketAddr> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let status = child.wait().map(|s| s.to_string()).unwrap_or_default();
                return Err(format!(
                    "successor for {} exited before READY ({status})",
                    node.vip
                ));
            }
            Ok(_) => {
                if let Some(addr) = line.strip_prefix("ADMIN ") {
                    admin = addr.trim().parse().ok();
                }
                if line.starts_with("READY ") {
                    announce(&format!(
                        "SPAWNED pid={} vip={} config={}",
                        child.id(),
                        node.vip,
                        cfg.display()
                    ));
                    // Keep the pipe drained for the child's lifetime; a
                    // dropped read end would EPIPE its next announcement.
                    std::thread::spawn(move || {
                        let mut sink = String::new();
                        loop {
                            sink.clear();
                            match reader.read_line(&mut sink) {
                                Ok(0) | Err(_) => break,
                                Ok(_) => {}
                            }
                        }
                    });
                    return Ok((child, admin));
                }
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("successor for {}: read stdout: {e}", node.vip));
            }
        }
    }
}

/// `<journal>.fleet` — the per-batch fleet-report sidecar, beside the
/// train journal. A separate file keeps the train journal a strict
/// [`JournalRecord`] stream that resume can replay.
fn sidecar_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_os_string();
    os.push(".fleet");
    PathBuf::from(os)
}

/// The controller's fleet-observability state: each released successor's
/// admin endpoint (captured from its `ADMIN` line), its last `/stats`
/// scrape (consecutive scrapes give the per-protocol canary deltas), a
/// controller-side [`DisruptionAuditor`] per release window, and the
/// batch → clusters membership learned from the journal stream. At each
/// batch promotion the member nodes' snapshots merge into a
/// [`FleetReport`] journaled to the sidecar and announced as
/// `FLEET_REPORT <json>`.
struct FleetObserver {
    admins: HashMap<u32, SocketAddr>,
    last: HashMap<u32, StatsSnapshot>,
    auditors: HashMap<u32, DisruptionAuditor>,
    members: HashMap<u32, Vec<u32>>,
    sidecar: std::fs::File,
}

impl FleetObserver {
    /// Opens the report sidecar beside `journal_path` (`fresh` discards
    /// reports from a previous train, mirroring the journal).
    fn new(journal_path: &Path, fresh: bool) -> Result<FleetObserver, String> {
        let path = sidecar_path(journal_path);
        let mut opts = std::fs::OpenOptions::new();
        opts.create(true);
        if fresh {
            opts.write(true).truncate(true);
        } else {
            opts.append(true);
        }
        let sidecar = opts
            .open(&path)
            .map_err(|e| format!("open fleet sidecar {}: {e}", path.display()))?;
        Ok(FleetObserver {
            admins: HashMap::new(),
            last: HashMap::new(),
            auditors: HashMap::new(),
            members: HashMap::new(),
            sidecar,
        })
    }

    /// A cluster's successor is serving: remember its admin endpoint and
    /// open a fresh controller-side audit window. The successor's
    /// counters start at zero, so observing zero totals before
    /// `begin_release` puts its whole lifetime inside the window.
    fn released(&mut self, cluster: ClusterId, admin: Option<SocketAddr>) {
        let c = cluster.0;
        self.last.remove(&c);
        match admin {
            Some(addr) => self.admins.insert(c, addr),
            None => self.admins.remove(&c),
        };
        let auditor = DisruptionAuditor::new(AuditorConfig::default());
        auditor.observe(AuditTotals::default());
        auditor.begin_release();
        self.auditors.insert(c, auditor);
    }

    /// Scrapes the successor's `/stats`, feeds the controller-side
    /// auditor, and returns the (MQTT, QUIC) canary windows as deltas
    /// against the previous scrape. `None` means the node has no admin
    /// endpoint or the scrape failed — the caller degrades to an
    /// HTTP-only window rather than halting on silence.
    fn scrape(&mut self, cluster: ClusterId) -> Option<(WindowSample, WindowSample)> {
        let c = cluster.0;
        let admin = *self.admins.get(&c)?;
        let body = doctor::http_get(admin, "/stats").ok()?;
        let snap: StatsSnapshot = serde_json::from_str(&body).ok()?;
        if let Some(auditor) = self.auditors.get(&c) {
            auditor.observe(snap.audit_totals());
        }
        let zero = StatsSnapshot::default();
        let prev = self.last.get(&c).unwrap_or(&zero);
        let mqtt_disruptions = (snap.mqtt_dropped + snap.dcr_dropped + snap.forced_mqtt_disconnects)
            .saturating_sub(prev.mqtt_dropped + prev.dcr_dropped + prev.forced_mqtt_disconnects);
        let mqtt = WindowSample {
            // Drops count as traffic too, so a window of pure drops
            // carries its own denominator.
            requests: snap.mqtt_tunnels.saturating_sub(prev.mqtt_tunnels) + mqtt_disruptions,
            disruptions: mqtt_disruptions,
        };
        let quic_disruptions = (snap.quic_unknown_flow + snap.forced_quic_closes)
            .saturating_sub(prev.quic_unknown_flow + prev.forced_quic_closes);
        let quic = WindowSample {
            requests: (snap.quic_flows_opened + snap.quic_served)
                .saturating_sub(prev.quic_flows_opened + prev.quic_served)
                + quic_disruptions,
            disruptions: quic_disruptions,
        };
        self.last.insert(c, snap);
        Some((mqtt, quic))
    }

    /// Folds freshly-journaled records into the observer's view: cluster
    /// membership per batch, and — when a `BatchPromoted` landed — which
    /// batch just closed.
    fn note(&mut self, records: &[JournalRecord]) -> Option<u32> {
        let mut promoted = None;
        for rec in records {
            match rec {
                JournalRecord::ClusterReleased { batch, cluster, .. } => {
                    self.members.entry(*batch).or_default().push(cluster.0);
                }
                JournalRecord::BatchPromoted { batch, .. } => promoted = Some(*batch),
                _ => {}
            }
        }
        promoted
    }

    /// Assembles and journals the just-promoted batch's [`FleetReport`]:
    /// one final scrape per member node, the cross-node merge of their
    /// latency histograms, and each node's audit verdict.
    fn publish(&mut self, batch: u32, nodes: &[Node], unix_ms: u64) -> Result<(), String> {
        let mut report = FleetReport::new(batch, unix_ms);
        for c in self.members.remove(&batch).unwrap_or_default() {
            // One last scrape so the report covers the full window.
            let _ = self.scrape(ClusterId(c));
            let audit = self.auditors.remove(&c).map(|a| a.end_release());
            let vip = nodes[c as usize].vip.to_string();
            let node = match self.last.get(&c) {
                Some(snap) => {
                    let totals = snap.audit_totals();
                    NodeReport {
                        cluster: c,
                        vip,
                        scraped: true,
                        requests: totals.requests,
                        disruptions: totals.http_5xx
                            + totals.proxy_errors
                            + totals.conn_resets
                            + totals.mqtt_drops,
                        latency_us: snap.telemetry.request_latency_us.clone(),
                        audit,
                    }
                }
                None => NodeReport {
                    cluster: c,
                    vip,
                    audit,
                    ..NodeReport::default()
                },
            };
            report.push(node);
        }
        // PANIC-OK: the report is derive(Serialize) scalars, strings, and
        // histograms; serialization cannot fail.
        let line = serde_json::to_string(&report).expect("fleet report serializes");
        writeln!(self.sidecar, "{line}").map_err(|e| format!("fleet sidecar write: {e}"))?;
        self.sidecar
            .sync_data()
            .map_err(|e| format!("fleet sidecar fsync: {e}"))?;
        announce(&format!("FLEET_REPORT {line}"));
        Ok(())
    }
}

/// Write-ahead persist plus fleet bookkeeping: journals the drained
/// records, folds them into the observer, and publishes a fleet report
/// for any batch they promoted. Returns whether a promotion landed (the
/// batch-boundary fault hook).
fn commit(
    journal: &mut Journal,
    observer: &mut FleetObserver,
    nodes: &[Node],
    unix_ms: u64,
    records: &[JournalRecord],
) -> Result<bool, String> {
    journal.persist(records)?;
    if let Some(batch) = observer.note(records) {
        observer.publish(batch, nodes, unix_ms)?;
        return Ok(true);
    }
    Ok(false)
}

/// Doctor preflight over every node of the train: the takeover sockets
/// must be offerable, both configs of every node must validate, their
/// upstreams must answer, and each VIP must be serving. Returns the worst
/// severity (the caller refuses on critical unless `--force`).
fn preflight(nodes: &[Node]) -> Severity {
    let mut findings = vec![
        doctor::check_fd_limit(),
        doctor::check_conntrack(),
        doctor::check_ephemeral_ports(),
    ];
    for node in nodes {
        findings.push(doctor::check_takeover_path(&node.sock));
        findings.push(doctor::check_reachable("vip", node.vip, Severity::Critical));
        doctor::check_config(&node.new_cfg, &mut findings);
        doctor::check_config(&node.rollback_cfg, &mut findings);
    }
    doctor::emit(&findings)
}

struct TrainFlags {
    batch_size: usize,
    stagger_ms: u64,
    window_ms: u64,
    windows: u32,
    probes: u64,
    max_missed: u32,
}

impl TrainFlags {
    fn from_args(args: &Args) -> Result<TrainFlags, String> {
        Ok(TrainFlags {
            batch_size: args.u64_or("--batch-size", 1)?.max(1) as usize,
            stagger_ms: args.u64_or("--stagger-ms", 0)?,
            window_ms: args.u64_or("--window-ms", 500)?.max(1),
            windows: args.u64_or("--windows", 1)?.max(1) as u32,
            probes: args.u64_or("--probes-per-window", 20)?.max(1),
            max_missed: args.u64_or("--max-missed", 3)? as u32,
        })
    }

    fn train_config(&self, clusters: usize) -> TrainConfig {
        TrainConfig {
            clusters: (0..clusters).map(|i| ClusterId(i as u32)).collect(),
            batch_size: self.batch_size,
            stagger_ms: self.stagger_ms,
            policy: CanaryPolicy {
                // The gate must be able to judge a window made of exactly
                // our own probes.
                min_requests: self.probes,
                ..CanaryPolicy::default()
            },
            windows_to_promote: self.windows,
            max_missed_windows: self.max_missed,
        }
    }
}

/// `zdr orchestrate` entry point.
pub(crate) fn run(args: &Args) -> ExitCode {
    match orchestrate(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn orchestrate(args: &Args) -> Result<ExitCode, String> {
    let value_flags = [
        "--node",
        "--journal",
        "--batch-size",
        "--stagger-ms",
        "--window-ms",
        "--windows",
        "--probes-per-window",
        "--max-missed",
        "--fault",
    ];
    let bool_flags = ["--force", "--fresh"];
    args.validate(&value_flags, &bool_flags)?;

    let nodes: Vec<Node> = args
        .values("--node")
        .into_iter()
        .map(Node::parse)
        .collect::<Result<_, _>>()?;
    if nodes.is_empty() {
        return Err("orchestrate requires at least one --node".into());
    }
    let journal_path = PathBuf::from(
        args.value("--journal")
            .ok_or_else(|| "orchestrate requires --journal".to_string())?,
    );
    let flags = TrainFlags::from_args(args)?;
    let rules = args
        .values("--fault")
        .into_iter()
        .map(parse_fault)
        .collect::<Result<Vec<_>, _>>()?;
    let seed = std::env::var("ZDR_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let faults = ScriptedFaults::new(seed, rules);

    // Preflight before anything irreversible: a train that cannot finish
    // should not start.
    if preflight(&nodes) == Severity::Critical {
        if args.flag("--force") {
            announce("PREFLIGHT critical overridden by --force");
        } else {
            eprintln!(
                "orchestrate refused: preflight found critical problems (--force to override)"
            );
            return Ok(ExitCode::from(EXIT_REFUSED));
        }
    }

    let clock = Clock::system();
    let config = flags.train_config(nodes.len());

    // Resume-or-start: an existing journal is replayed (rolling back
    // whatever a crash left in flight); --fresh discards it.
    let mut existing = if args.flag("--fresh") {
        std::fs::write(&journal_path, b"")
            .map_err(|e| format!("truncate journal {}: {e}", journal_path.display()))?;
        Vec::new()
    } else {
        load_journal(&journal_path)?
    };
    if !existing.is_empty() {
        match faults.decide(FaultPoint::JournalReplay) {
            FaultAction::Die => {
                announce("TRAIN_CRASH injected at journal replay");
                return Ok(ExitCode::from(EXIT_CRASHED));
            }
            FaultAction::Truncate => {
                // A journal whose tail died with the machine: drop the
                // last record on disk and in memory, then replay.
                existing.pop();
                let mut rewritten = String::new();
                for rec in &existing {
                    // PANIC-OK: records round-trip through serde_json;
                    // anything we just parsed re-serializes.
                    rewritten.push_str(&serde_json::to_string(rec).expect("record serializes"));
                    rewritten.push('\n');
                }
                std::fs::write(&journal_path, rewritten)
                    .map_err(|e| format!("rewrite journal {}: {e}", journal_path.display()))?;
                announce("TRAIN_FAULT journal tail truncated (injected)");
            }
            _ => {}
        }
    }
    let mut train = if existing.is_empty() {
        let mut train = ReleaseTrain::new(config).map_err(|e| e.to_string())?;
        train.start(clock.unix_ms());
        train
    } else {
        match ReleaseTrain::from_journal(config, &existing) {
            Ok(train) => {
                announce(&format!(
                    "RESUMED {} records from {}",
                    existing.len(),
                    journal_path.display()
                ));
                train
            }
            Err(e @ ResumeError::StaleJournal { .. }) => {
                eprintln!(
                    "orchestrate refused: {e} — this journal belongs to a different train; \
                     pass --fresh to discard it"
                );
                return Ok(ExitCode::from(EXIT_REFUSED));
            }
            Err(e) => {
                eprintln!(
                    "orchestrate refused: journal {}: {e}",
                    journal_path.display()
                );
                return Ok(ExitCode::from(EXIT_REFUSED));
            }
        }
    };

    let mut journal = Journal::append_to(&journal_path)?;
    let mut observer = FleetObserver::new(&journal_path, args.flag("--fresh"))?;
    // Rebuild batch membership from the replayed journal so a batch whose
    // releases landed before the crash still gets a fleet report — minus
    // batches already promoted, whose reports were published pre-crash.
    observer.note(&existing);
    for rec in &existing {
        if let JournalRecord::BatchPromoted { batch, .. } = rec {
            observer.members.remove(batch);
        }
    }
    // Children are the serving fleet: kept so their handles outlive the
    // loop, never killed by the controller.
    let mut children: Vec<Child> = Vec::new();

    loop {
        let actions = train.next_actions(clock.unix_ms());
        // Write-ahead: persist what next_actions decided (BatchStarted,
        // rollback transitions) before executing any of it.
        commit(
            &mut journal,
            &mut observer,
            &nodes,
            clock.unix_ms(),
            &train.drain_journal(),
        )?;
        for action in &actions {
            // A halt triggered by an earlier action in this same list
            // voids the rest of the batch's releases/observations: only
            // safety (rollback) actions still execute.
            if train.phase() == TrainPhase::Halted
                && !matches!(action, TrainAction::RollBackCluster { .. })
            {
                continue;
            }
            match *action {
                TrainAction::ReleaseCluster { cluster, .. } => {
                    let node = &nodes[cluster.0 as usize];
                    // Baseline on the old generation, so the gate's
                    // threshold reflects this VIP's pre-release health.
                    let baseline = probe_window(node.vip, flags.probes, flags.window_ms);
                    train.on_release_started(clock.unix_ms(), cluster, baseline);
                    commit(
                        &mut journal,
                        &mut observer,
                        &nodes,
                        clock.unix_ms(),
                        &train.drain_journal(),
                    )?;
                    match check_config_file(&node.new_cfg) {
                        Ok(_) => match spawn_successor(node, &node.new_cfg) {
                            Ok((child, admin)) => {
                                children.push(child);
                                observer.released(cluster, admin);
                                train.on_cluster_released(clock.unix_ms(), cluster);
                            }
                            Err(e) => {
                                eprintln!("release of {} failed: {e}", node.vip);
                                train.on_release_failed(clock.unix_ms(), cluster);
                            }
                        },
                        Err(errs) => {
                            eprintln!(
                                "release of {} failed: config {} rejected: {}",
                                node.vip,
                                node.new_cfg.display(),
                                errs.join("; ")
                            );
                            train.on_release_failed(clock.unix_ms(), cluster);
                        }
                    }
                    commit(
                        &mut journal,
                        &mut observer,
                        &nodes,
                        clock.unix_ms(),
                        &train.drain_journal(),
                    )?;
                }
                TrainAction::ObserveCluster { cluster, .. } => {
                    let node = &nodes[cluster.0 as usize];
                    if faults.decide(FaultPoint::PromotionVerdict) == FaultAction::Drop {
                        announce(&format!(
                            "TRAIN_FAULT verdict for {} dropped (injected)",
                            node.vip
                        ));
                        train.on_window_missed(clock.unix_ms(), cluster);
                    } else {
                        let http = probe_window(node.vip, flags.probes, flags.window_ms);
                        // The per-protocol half of the window rides the
                        // successor's own /stats counters.
                        let (mqtt, quic) = match faults.decide(FaultPoint::StatsScrape) {
                            FaultAction::Die => {
                                // Injected: the scrape reports a
                                // generation dropping every MQTT tunnel
                                // while the HTTP probes stay green.
                                announce(&format!(
                                    "TRAIN_FAULT scrape for {} reports total MQTT drop (injected)",
                                    node.vip
                                ));
                                (
                                    WindowSample {
                                        requests: flags.probes,
                                        disruptions: flags.probes,
                                    },
                                    WindowSample::default(),
                                )
                            }
                            FaultAction::Drop => {
                                announce(&format!(
                                    "TRAIN_FAULT scrape for {} lost (injected) — HTTP-only window",
                                    node.vip
                                ));
                                (WindowSample::default(), WindowSample::default())
                            }
                            _ => observer.scrape(cluster).unwrap_or_default(),
                        };
                        announce(&format!(
                            "CANARY vip={} http={}/{} mqtt={}/{} quic={}/{}",
                            node.vip,
                            http.disruptions,
                            http.requests,
                            mqtt.disruptions,
                            mqtt.requests,
                            quic.disruptions,
                            quic.requests,
                        ));
                        let sample = WindowSample {
                            requests: http.requests + mqtt.requests + quic.requests,
                            disruptions: http.disruptions + mqtt.disruptions + quic.disruptions,
                        };
                        train.on_window(clock.unix_ms(), cluster, sample);
                    }
                    let promoted = commit(
                        &mut journal,
                        &mut observer,
                        &nodes,
                        clock.unix_ms(),
                        &train.drain_journal(),
                    )?;
                    if promoted
                        && !train.is_settled()
                        && faults.decide(FaultPoint::BatchBoundary) == FaultAction::Die
                    {
                        // The promotion is journaled (write-ahead held),
                        // the crash lands between batches — the resume
                        // path's bread-and-butter case.
                        announce("TRAIN_CRASH injected at batch boundary");
                        return Ok(ExitCode::from(EXIT_CRASHED));
                    }
                }
                TrainAction::RollBackCluster { cluster, .. } => {
                    let node = &nodes[cluster.0 as usize];
                    match spawn_successor(node, &node.rollback_cfg) {
                        // The rollback successor's admin endpoint is not
                        // tracked: its batch already failed, and no fleet
                        // report will cover it.
                        Ok((child, _admin)) => {
                            children.push(child);
                            train.on_cluster_rolled_back(clock.unix_ms(), cluster);
                            commit(
                                &mut journal,
                                &mut observer,
                                &nodes,
                                clock.unix_ms(),
                                &train.drain_journal(),
                            )?;
                        }
                        Err(e) => {
                            // The journal shows RollbackStarted without
                            // this cluster's ClusterRolledBack, so a rerun
                            // re-issues exactly this rollback.
                            eprintln!(
                                "rollback of {} failed: {e}; journal is consistent — rerun to retry",
                                node.vip
                            );
                            return Ok(ExitCode::from(EXIT_ROLLBACK_FAILED));
                        }
                    }
                }
                TrainAction::WaitUntil { at } => {
                    let now = clock.unix_ms();
                    if at > now {
                        // Capped so a long stagger stays interruptible in
                        // bounded steps (and WaitUntil is re-issued).
                        std::thread::sleep(Duration::from_millis((at - now).min(200)));
                    }
                }
            }
        }
        if train.is_settled() {
            break;
        }
        if actions.is_empty() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    commit(
        &mut journal,
        &mut observer,
        &nodes,
        clock.unix_ms(),
        &train.drain_journal(),
    )?;
    let report = train.report();
    // PANIC-OK: the report is a derive(Serialize) struct of scalars;
    // serialization cannot fail.
    announce(&format!(
        "TRAIN_REPORT {}",
        serde_json::to_string(&report).expect("report serializes")
    ));
    Ok(match report.phase {
        TrainPhase::Completed => ExitCode::SUCCESS,
        _ => ExitCode::from(EXIT_HALTED),
    })
}
